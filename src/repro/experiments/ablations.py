"""Ablation studies for the design choices DESIGN.md calls out.

Four studies beyond the paper's numbered figures:

1. **SLD reuse** -- how much main-memory traffic the Spatial Locality
   Detection engine saves vs re-fetching every unpruned vector.
2. **Token interleaving** -- cycle cost of sequential block mapping vs
   interleaving in the full system (complements Figure 8's raw metric).
3. **Threshold noise margin** -- section III-A's robustness knob: a
   negative margin keeps borderline tokens, trading pruning rate (and
   thus performance) for noise immunity.
4. **Locality sensitivity** -- how the SPRINT benefit scales with the
   workload's intrinsic spatial locality (ViT sits at the low end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.configs import S_SPRINT, SprintConfig
from repro.core.system import ExecutionMode, SprintSystem
from repro.models.zoo import get_model
from repro.workloads.generator import generate_workload


@dataclass(frozen=True)
class SldAblationRow:
    model: str
    traffic_with_sld_bytes: float
    traffic_without_sld_bytes: float

    @property
    def traffic_saving(self) -> float:
        if self.traffic_with_sld_bytes <= 0:
            return float("inf")
        return self.traffic_without_sld_bytes / self.traffic_with_sld_bytes


def run_sld_ablation(
    models: Sequence[str] = ("BERT-B", "ViT-B", "GPT-2-L"),
    config: SprintConfig = S_SPRINT,
    num_samples: int = 1,
    seed: int = 1,
) -> List[SldAblationRow]:
    rows = []
    for name in models:
        spec = get_model(name)
        with_sld = SprintSystem(config, enable_sld=True).simulate_model(
            spec, ExecutionMode.SPRINT, num_samples=num_samples, seed=seed
        )
        without = SprintSystem(config, enable_sld=False).simulate_model(
            spec, ExecutionMode.SPRINT, num_samples=num_samples, seed=seed
        )
        rows.append(
            SldAblationRow(
                model=name,
                traffic_with_sld_bytes=with_sld.data_movement_bytes(),
                traffic_without_sld_bytes=without.data_movement_bytes(),
            )
        )
    return rows


@dataclass(frozen=True)
class InterleavingAblationRow:
    model: str
    interleaved_cycles: float
    sequential_cycles: float

    @property
    def slowdown_without_interleaving(self) -> float:
        if self.interleaved_cycles <= 0:
            return float("inf")
        return self.sequential_cycles / self.interleaved_cycles


def run_interleaving_ablation(
    models: Sequence[str] = ("BERT-B", "GPT-2-L"),
    config: SprintConfig = None,
    num_samples: int = 1,
    seed: int = 1,
) -> List[InterleavingAblationRow]:
    from repro.core.configs import L_SPRINT

    config = config or L_SPRINT  # imbalance needs multiple CORELETs
    rows = []
    for name in models:
        spec = get_model(name)
        inter = SprintSystem(
            config, enable_interleaving=True
        ).simulate_model(
            spec, ExecutionMode.SPRINT, num_samples=num_samples, seed=seed
        )
        seq = SprintSystem(
            config, enable_interleaving=False
        ).simulate_model(
            spec, ExecutionMode.SPRINT, num_samples=num_samples, seed=seed
        )
        rows.append(
            InterleavingAblationRow(
                model=name,
                interleaved_cycles=inter.cycles,
                sequential_cycles=seq.cycles,
            )
        )
    return rows


@dataclass(frozen=True)
class MarginAblationRow:
    margin: float
    pruning_rate: float
    accuracy: float


def run_margin_ablation(
    margins: Sequence[float] = (0.0, 0.2, 0.4, 0.8),
    pruning_rate: float = 0.746,
    noise_sigma: float = 0.15,
    num_samples: int = 24,
    seed: int = 19,
) -> List[MarginAblationRow]:
    """Noise-margin sweep: margin recovers accuracy, costs pruning rate."""
    from repro.attention.policies import SprintPolicy
    from repro.models.tasks import evaluate_accuracy, make_classification_task

    task = make_classification_task(
        num_samples=num_samples, seq_len=96, seed=seed
    )
    rows = []
    for margin in margins:
        policy = SprintPolicy(
            pruning_rate,
            noise_sigma=noise_sigma,
            threshold_margin=margin,
            recompute=True,
        )
        accuracy = evaluate_accuracy(task, policy)
        # Measure the achieved pruning rate on one sample's first head.
        x = task.inputs[0]
        scores = task.model.score_matrices(x, 0)[0]
        _, keep = policy.process(scores)
        rows.append(
            MarginAblationRow(
                margin=margin,
                pruning_rate=1.0 - float(keep.mean()),
                accuracy=accuracy,
            )
        )
    return rows


@dataclass(frozen=True)
class LocalityAblationRow:
    locality: float
    measured_overlap: float
    energy_reduction: float


def run_locality_ablation(
    localities: Sequence[float] = (0.2, 0.5, 0.8),
    config: SprintConfig = S_SPRINT,
    seq_len: int = 384,
    pruning_rate: float = 0.746,
    seed: int = 1,
) -> List[LocalityAblationRow]:
    from repro.attention.locality import measure_adjacent_overlap

    rows = []
    system = SprintSystem(config)
    for locality in localities:
        workload = generate_workload(
            seq_len, pruning_rate, padding_ratio=0.0,
            num_samples=1, locality=locality, seed=seed,
        )
        reports = system.simulate_modes(
            workload,
            (ExecutionMode.BASELINE, ExecutionMode.SPRINT),
            "ablation",
        )
        base = reports[ExecutionMode.BASELINE.value]
        sprint = reports[ExecutionMode.SPRINT.value]
        overlap = measure_adjacent_overlap(workload.samples[0].keep_mask)
        rows.append(
            LocalityAblationRow(
                locality=locality,
                measured_overlap=overlap,
                energy_reduction=sprint.energy_reduction_vs(base),
            )
        )
    return rows


def format_tables(
    sld: List[SldAblationRow],
    inter: List[InterleavingAblationRow],
    margin: List[MarginAblationRow],
    locality: List[LocalityAblationRow],
) -> str:
    lines = ["Ablation studies", "", "1. SLD reuse (traffic saving):"]
    for r in sld:
        lines.append(
            f"   {r.model:<10} {r.traffic_saving:6.2f}x less traffic with SLD"
        )
    lines.append("2. Token interleaving (cycle cost of sequential mapping):")
    for r in inter:
        lines.append(
            f"   {r.model:<10} sequential is "
            f"{r.slowdown_without_interleaving:5.2f}x slower"
        )
    lines.append("3. Threshold noise margin:")
    for r in margin:
        lines.append(
            f"   margin={r.margin:.2f}: pruning {r.pruning_rate:6.1%}, "
            f"accuracy {r.accuracy:.3f}"
        )
    lines.append("4. Locality sensitivity:")
    for r in locality:
        lines.append(
            f"   locality={r.locality:.1f}: overlap {r.measured_overlap:6.1%},"
            f" energy reduction {r.energy_reduction:6.2f}x"
        )
    return "\n".join(lines)


def run():
    """Aggregate runner-compatible entry point."""
    return (
        run_sld_ablation(),
        run_interleaving_ablation(),
        run_margin_ablation(),
        run_locality_ablation(),
    )


def format_table(rows) -> str:
    return format_tables(*rows)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
