"""Figure 9: task quality under the four hardware scenarios.

Per benchmark model: (1) software baseline, (2) ideal runtime pruning,
(3) SPRINT without on-chip recompute, (4) full SPRINT.  Classification
models report accuracy (higher better); the GPT-2-L stand-in reports
perplexity (lower better).  The paper's findings: SPRINT degrades
accuracy by 0.36% on average, while dropping the recompute costs ~4%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.attention.policies import (
    ExactPolicy,
    RuntimePruningPolicy,
    SprintPolicy,
)
from repro.models.tasks import (
    evaluate_accuracy,
    evaluate_perplexity,
    make_classification_task,
    make_lm_task,
)
from repro.models.zoo import get_model

DEFAULT_MODELS = (
    "BERT-B", "BERT-L", "ALBERT-XL", "ALBERT-XXL", "ViT-B", "GPT-2-L",
)


@dataclass(frozen=True)
class Fig9Row:
    model: str
    metric: str
    baseline: float
    runtime_pruning: float
    sprint_no_recompute: float
    sprint: float

    @property
    def sprint_degradation(self) -> float:
        """Absolute quality drop of SPRINT vs baseline (sign-corrected)."""
        if self.metric == "perplexity":
            return self.sprint - self.baseline
        return self.baseline - self.sprint


def run(
    models: Sequence[str] = DEFAULT_MODELS,
    num_samples: int = 32,
    seq_len: int = 96,
    seed: int = 17,
) -> List[Fig9Row]:
    rows: List[Fig9Row] = []
    for index, name in enumerate(models):
        spec = get_model(name)
        rate = spec.pruning_rate
        policies = {
            "baseline": ExactPolicy(),
            "runtime_pruning": RuntimePruningPolicy(rate),
            "no_recompute": SprintPolicy(rate, recompute=False),
            "sprint": SprintPolicy(rate, recompute=True),
        }
        if spec.is_generative:
            task = make_lm_task(
                num_samples=num_samples, seq_len=seq_len, seed=seed + index
            )
            vals = {
                k: evaluate_perplexity(task, p) for k, p in policies.items()
            }
            metric = "perplexity"
        else:
            task = make_classification_task(
                num_samples=num_samples, seq_len=seq_len, seed=seed + index
            )
            vals = {
                k: evaluate_accuracy(task, p) for k, p in policies.items()
            }
            metric = "accuracy"
        rows.append(
            Fig9Row(
                model=name,
                metric=metric,
                baseline=vals["baseline"],
                runtime_pruning=vals["runtime_pruning"],
                sprint_no_recompute=vals["no_recompute"],
                sprint=vals["sprint"],
            )
        )
    return rows


def average_degradation(rows: List[Fig9Row]) -> float:
    """Mean absolute accuracy degradation (classification rows only)."""
    acc = [r.sprint_degradation for r in rows if r.metric == "accuracy"]
    return float(np.mean(acc)) if acc else 0.0


def format_table(rows: List[Fig9Row]) -> str:
    lines = [
        "Figure 9: task quality under the four scenarios",
        f"{'model':<12} {'metric':<11} {'baseline':>9} {'pruning':>9} "
        f"{'w/o rec.':>9} {'SPRINT':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.model:<12} {r.metric:<11} {r.baseline:>9.4f} "
            f"{r.runtime_pruning:>9.4f} {r.sprint_no_recompute:>9.4f} "
            f"{r.sprint:>9.4f}"
        )
    lines.append(
        f"avg accuracy degradation (SPRINT vs baseline): "
        f"{average_degradation(rows):+.4f}"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
