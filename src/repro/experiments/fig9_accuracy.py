"""Figure 9: task quality under the four hardware scenarios.

Per benchmark model: (1) software baseline, (2) ideal runtime pruning,
(3) SPRINT without on-chip recompute, (4) full SPRINT.  Classification
models report accuracy (higher better); the GPT-2-L stand-in reports
perplexity (lower better).  The paper's findings: SPRINT degrades
accuracy by 0.36% on average, while dropping the recompute costs ~4%.

Shardable: each model's four-policy evaluation is an independent
:class:`Fig9Unit` on the runtime's WorkUnit protocol
(``plan``/``prime``/``clear_primed``).  The unit key embeds the
model's *effective* seed (``seed + position``), exactly what a serial
``run`` would use, so sharded artifacts are byte-identical at every
``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.attention.policies import (
    ExactPolicy,
    RuntimePruningPolicy,
    SprintPolicy,
)
from repro.models.tasks import (
    evaluate_accuracy,
    evaluate_perplexity,
    make_classification_task,
    make_lm_task,
)
from repro.models.zoo import get_model

DEFAULT_MODELS = (
    "BERT-B", "BERT-L", "ALBERT-XL", "ALBERT-XXL", "ViT-B", "GPT-2-L",
)


@dataclass(frozen=True)
class Fig9Row:
    model: str
    metric: str
    baseline: float
    runtime_pruning: float
    sprint_no_recompute: float
    sprint: float

    @property
    def sprint_degradation(self) -> float:
        """Absolute quality drop of SPRINT vs baseline (sign-corrected)."""
        if self.metric == "perplexity":
            return self.sprint - self.baseline
        return self.baseline - self.sprint


def _evaluate_model(
    name: str, num_samples: int, seq_len: int, model_seed: int
) -> Fig9Row:
    """All four policy scenarios for one model at its effective seed."""
    spec = get_model(name)
    rate = spec.pruning_rate
    policies = {
        "baseline": ExactPolicy(),
        "runtime_pruning": RuntimePruningPolicy(rate),
        "no_recompute": SprintPolicy(rate, recompute=False),
        "sprint": SprintPolicy(rate, recompute=True),
    }
    if spec.is_generative:
        task = make_lm_task(
            num_samples=num_samples, seq_len=seq_len, seed=model_seed
        )
        vals = {
            k: evaluate_perplexity(task, p) for k, p in policies.items()
        }
        metric = "perplexity"
    else:
        task = make_classification_task(
            num_samples=num_samples, seq_len=seq_len, seed=model_seed
        )
        vals = {
            k: evaluate_accuracy(task, p) for k, p in policies.items()
        }
        metric = "accuracy"
    return Fig9Row(
        model=name,
        metric=metric,
        baseline=vals["baseline"],
        runtime_pruning=vals["runtime_pruning"],
        sprint_no_recompute=vals["no_recompute"],
        sprint=vals["sprint"],
    )


@dataclass(frozen=True)
class Fig9Unit:
    """One model's quality evaluation as a runtime WorkUnit.

    ``model_seed`` is the effective task seed (``seed + position`` of
    the model in the requested tuple) -- embedding it rather than the
    position keeps the key content-addressed: the same model evaluated
    at the same seed replays from cache regardless of where it sits in
    a later run's model list.
    """

    model: str
    num_samples: int
    seq_len: int
    model_seed: int

    @property
    def key(self) -> Tuple:
        return (
            "fig9", self.model, self.num_samples, self.seq_len,
            self.model_seed,
        )

    @property
    def group(self) -> Tuple[str, str]:
        return ("fig9", self.model)

    def execute(self) -> Fig9Row:
        return _evaluate_model(
            self.model, self.num_samples, self.seq_len, self.model_seed
        )


#: Rows installed by :func:`prime` (computed in a worker process or
#: replayed from the unit cache); consulted by :func:`run`.
_PRIMED: Dict[Tuple, Fig9Row] = {}


def plan(
    models: Sequence[str] = DEFAULT_MODELS,
    num_samples: int = 32,
    seq_len: int = 96,
    seed: int = 17,
) -> List[Fig9Unit]:
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    return [
        Fig9Unit(
            model=name,
            num_samples=num_samples,
            seq_len=seq_len,
            model_seed=seed + index,
        )
        for index, name in enumerate(models)
    ]


def prime(key: Tuple, row: Fig9Row) -> None:
    """Install an externally computed row (parallel-runtime hook)."""
    _PRIMED[tuple(key)] = row


def clear_primed() -> None:
    _PRIMED.clear()


def run(
    models: Sequence[str] = DEFAULT_MODELS,
    num_samples: int = 32,
    seq_len: int = 96,
    seed: int = 17,
) -> List[Fig9Row]:
    rows: List[Fig9Row] = []
    for unit in plan(
        models=models, num_samples=num_samples, seq_len=seq_len, seed=seed
    ):
        row = _PRIMED.get(unit.key)
        if row is None:
            row = unit.execute()
        rows.append(row)
    return rows


def average_degradation(rows: List[Fig9Row]) -> float:
    """Mean absolute accuracy degradation (classification rows only)."""
    acc = [r.sprint_degradation for r in rows if r.metric == "accuracy"]
    return float(np.mean(acc)) if acc else 0.0


def format_table(rows: List[Fig9Row]) -> str:
    lines = [
        "Figure 9: task quality under the four scenarios",
        f"{'model':<12} {'metric':<11} {'baseline':>9} {'pruning':>9} "
        f"{'w/o rec.':>9} {'SPRINT':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.model:<12} {r.metric:<11} {r.baseline:>9.4f} "
            f"{r.runtime_pruning:>9.4f} {r.sprint_no_recompute:>9.4f} "
            f"{r.sprint:>9.4f}"
        )
    lines.append(
        f"avg accuracy degradation (SPRINT vs baseline): "
        f"{average_degradation(rows):+.4f}"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
