"""Resilience study: availability and goodput under device failures.

Not a paper figure -- the ROADMAP's fault-tolerant-serving extension.
A fixed request stream (iso-traffic across every point) runs against a
seeded :class:`~repro.serving.faults.FaultSchedule` of exponential
failure/recovery outages while the sweep varies the mean time between
failures, the fleet size, and the :class:`~repro.serving.faults
.RetryPolicy`.  Each point reports fleet availability, goodput versus
offered load, drop and retry counts, tail latency over the surviving
requests, and the energy wasted in batches lost mid-flight.

The headline derived metric is the *retry dividend*: at each (MTBF,
fleet) cell, the goodput recovered by retrying relative to dropping on
first failure -- redundancy (more devices) and persistence (more
attempts) trade off visibly against the wasted-energy column.

The sweep is shardable: every (mtbf, fleet, policy) point is an
independent :class:`ResilienceUnit` on the runtime's WorkUnit protocol
(``plan``/``prime``/``clear_primed``), so ``sprint-experiments
resilience --jobs N`` spreads the points across workers.  Traffic is
seeded by a stable hash of (experiment seed, pattern) and the fault
schedule by ``default_rng([seed, device])`` per device -- never by
worker identity -- so artifacts are byte-identical for every ``--jobs``
value.  Units group by retry policy so a shard warms one shared cost
model per group.

Each point runs through the fault-mode columnar engine
(:func:`~repro.serving.faults.simulate_faulty_table`) by default,
pinned record-for-record equal to the fault-threaded per-request
reference loop (``engine="reference"``); ``engine="stream"`` runs the
same point out-of-core through :func:`~repro.serving.metrics
.summarize_stream` with fixed-size sketches.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configs import S_SPRINT, SprintConfig
from repro.core.system import ExecutionMode
from repro.experiments.serving import make_process, stream_seed
from repro.obs import telemetry
from repro.obs.trace import TraceConfig, TraceRecorder
from repro.serving.arrivals import generate_request_table
from repro.serving.batching import DynamicBatcher
from repro.serving.devices import ServiceCostModel, SprintDevice, shared_cost_model
from repro.serving.faults import FaultSchedule, RetryPolicy, simulate_faulty_table
from repro.serving.metrics import ServingReport, summarize, summarize_stream
from repro.serving.scheduler import ServingSimulator
from repro.serving.stream import RequestStream

#: Mean time between failures per device (seconds of simulation time).
DEFAULT_MTBFS = (2.0, 8.0, 30.0)
#: Fleet sizes swept (device d's outage trace is identical across
#: fleet sizes by construction, isolating the redundancy effect).
DEFAULT_FLEETS = (1, 2, 4)
#: Named retry policies the sweep compares.  ``none`` drops a request
#: on its first lost batch; the others re-admit with exponential
#: backoff up to the attempt budget.
RETRY_POLICIES: Dict[str, RetryPolicy] = {
    "none": RetryPolicy(max_attempts=1),
    "bounded": RetryPolicy(max_attempts=3, backoff_base_s=1e-3),
    "patient": RetryPolicy(max_attempts=6, backoff_base_s=1e-3),
}
DEFAULT_POLICIES = tuple(RETRY_POLICIES)
DEFAULT_REQUESTS_PER_POINT = 2000
#: Fault-schedule horizon as a multiple of the nominal stream span
#: (count / load); outages starting past it are not materialized, so a
#: heavily backlogged tail runs fault-free -- acceptable for a sweep
#: whose traffic is sized to drain well inside the horizon.
_HORIZON_SPANS = 4.0


@dataclass(frozen=True)
class ResilienceRow:
    """One (MTBF, fleet size, retry policy) point of the sweep."""

    mtbf_s: float
    num_devices: int
    policy: str
    offered_rps: float
    goodput_rps: float
    availability: float
    completed: int
    dropped: int
    drop_rate: float
    retries: int
    retried_completed: int
    p99_ms: float
    wasted_energy_uj: float


class ResilienceExperiment:
    """The availability/goodput sweep over MTBF, fleet, and retry policy.

    Parameters
    ----------
    mttr_s:
        Mean time to repair (exponential), shared by every sweep point
        so the MTBF axis reads as failure *frequency* at fixed outage
        length.
    load:
        Offered load (requests/s); identical traffic hits every point.
    deadline_range_s:
        Optional per-request deadline window (uniform); deadlines gate
        retries only.  Table engines only -- the out-of-core stream
        generator carries no deadline column.
    engine:
        ``"fast"`` (default) runs the fault-mode columnar engine;
        ``"reference"`` the fault-threaded per-request loop (identical
        reports, exists to define semantics); ``"stream"`` the
        out-of-core chunked path with sketch-bounded percentiles.
    """

    def __init__(
        self,
        model: str = "BERT-B",
        config: SprintConfig = S_SPRINT,
        mode: ExecutionMode = ExecutionMode.SPRINT,
        pattern: str = "poisson",
        load: float = 80.0,
        mttr_s: float = 0.25,
        max_batch_size: int = 8,
        max_wait_ms: float = 10.0,
        sla_ms: float = 150.0,
        deadline_range_s: Optional[Tuple[float, float]] = None,
        len_bucket: int = 32,
        seed: int = 0,
        engine: str = "fast",
    ):
        if engine not in ("fast", "reference", "stream"):
            raise ValueError(f"unknown engine {engine!r}")
        if engine == "stream" and deadline_range_s is not None:
            raise ValueError(
                "deadlines need a materialized table; the stream engine "
                "carries no deadline column"
            )
        if load <= 0:
            raise ValueError("load must be positive")
        if mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        self.model = model
        self.config = config
        self.mode = mode
        self.pattern = pattern
        self.load = load
        self.mttr_s = mttr_s
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.sla_ms = sla_ms
        self.deadline_range_s = deadline_range_s
        self.len_bucket = len_bucket
        self.seed = seed
        self.engine = engine

    # ------------------------------------------------------------------
    def _cost_model(self) -> ServiceCostModel:
        return shared_cost_model(
            self.config, self.mode, len_bucket=self.len_bucket, seed=self.seed
        )

    def _schedule(self, mtbf_s: float, num_devices: int, count: int) -> FaultSchedule:
        """The outage schedule one sweep point runs under.

        Seeded per device (not per fleet size): growing the fleet adds
        devices without re-rolling the existing ones' outages.
        """
        horizon_s = _HORIZON_SPANS * count / self.load
        return FaultSchedule.exponential(
            num_devices, mtbf_s, self.mttr_s, horizon_s, seed=self.seed
        )

    def _unit(
        self, mtbf_s: float, num_devices: int, policy: str, num_requests: int
    ) -> "ResilienceUnit":
        """The work unit for one sweep point of this experiment."""
        return ResilienceUnit(
            model=self.model,
            config=self.config,
            mode=self.mode.value,
            pattern=self.pattern,
            mtbf_s=mtbf_s,
            num_devices=num_devices,
            policy=policy,
            num_requests=num_requests,
            load=self.load,
            mttr_s=self.mttr_s,
            sla_ms=self.sla_ms,
            deadline_range_s=self.deadline_range_s,
            seed=self.seed,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            len_bucket=self.len_bucket,
            engine=self.engine,
        )

    def _trace_recorder(self) -> Optional[TraceRecorder]:
        """A recorder when the active telemetry asks for traces."""
        tele = telemetry.get_telemetry()
        if tele is None or tele.trace_dir is None:
            return None
        return TraceRecorder(
            TraceConfig(head=tele.trace_head, stride=tele.trace_stride)
        )

    def simulate(
        self, mtbf_s: float, num_devices: int, policy: str, num_requests: int
    ) -> ServingReport:
        """One point, summarized (fault-mode columnar path by default)."""
        if policy not in RETRY_POLICIES:
            raise KeyError(f"unknown retry policy {policy!r}")
        retry = RETRY_POLICIES[policy]
        process = make_process(self.pattern, self.load)
        faults = self._schedule(mtbf_s, num_devices, num_requests)
        if self.engine == "stream":
            stream = RequestStream(
                process,
                self.model,
                count=num_requests,
                seed=stream_seed(self.seed, self.pattern),
            )
            return summarize_stream(
                stream,
                self._cost_model(),
                config=self.config.name,
                mode=self.mode.value,
                pattern=self.pattern,
                offered_rps=process.mean_rate_rps,
                sla_s=self.sla_ms * 1e-3,
                num_devices=num_devices,
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_ms * 1e-3,
                faults=faults,
                retry=retry,
            )
        table = generate_request_table(
            process,
            self.model,
            count=num_requests,
            seed=stream_seed(self.seed, self.pattern),
            deadline_range_s=self.deadline_range_s,
        )
        cost = self._cost_model()
        cost.prime(table.specs[0], table.valid_len)
        recorder = self._trace_recorder()
        if self.engine == "fast":
            result = simulate_faulty_table(
                table,
                cost,
                faults,
                retry=retry,
                num_devices=num_devices,
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_ms * 1e-3,
                recorder=recorder,
            )
        else:
            devices = [SprintDevice(i, cost) for i in range(num_devices)]
            batcher = DynamicBatcher(
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_ms * 1e-3,
            )
            result = ServingSimulator(
                devices, batcher, recorder, faults=faults, retry=retry
            ).run(table.to_requests())
        if recorder is not None:
            recorder.write(
                Path(telemetry.get_telemetry().trace_dir)
                / f"resilience-mtbf{mtbf_s:g}-n{num_devices}-{policy}.json"
            )
        return summarize(
            result,
            config=self.config.name,
            mode=self.mode.value,
            pattern=self.pattern,
            offered_rps=process.mean_rate_rps,
            sla_s=self.sla_ms * 1e-3,
        )

    def run(
        self,
        mtbfs: Sequence[float] = DEFAULT_MTBFS,
        fleets: Sequence[int] = DEFAULT_FLEETS,
        policies: Sequence[str] = DEFAULT_POLICIES,
        requests_per_point: int = DEFAULT_REQUESTS_PER_POINT,
    ) -> List[ResilienceRow]:
        rows: List[ResilienceRow] = []
        for mtbf_s in mtbfs:
            for num_devices in fleets:
                for policy in policies:
                    key = self._unit(
                        mtbf_s, num_devices, policy, requests_per_point
                    ).key
                    report = _PRIMED.get(key)
                    if report is None:
                        report = self.simulate(
                            mtbf_s, num_devices, policy, requests_per_point
                        )
                    rows.append(
                        ResilienceRow(
                            mtbf_s=mtbf_s,
                            num_devices=num_devices,
                            policy=policy,
                            offered_rps=report.offered_rps,
                            goodput_rps=report.goodput_rps,
                            availability=report.availability,
                            completed=report.requests,
                            dropped=report.dropped_requests,
                            drop_rate=report.drop_rate,
                            retries=report.retries,
                            retried_completed=report.retried_completed,
                            p99_ms=report.latency.p99_s * 1e3,
                            wasted_energy_uj=report.wasted_energy_uj,
                        )
                    )
        return rows


@dataclass(frozen=True)
class ResilienceUnit:
    """One (MTBF, fleet, policy) sweep point as a runtime WorkUnit.

    ``key`` embeds every parameter the point's report depends on, so it
    deduplicates identical points and content-addresses the unit cache.
    Units group by retry policy so a shard warms one shared cost model.
    """

    model: str
    config: SprintConfig
    mode: str
    pattern: str
    mtbf_s: float
    num_devices: int
    policy: str
    num_requests: int
    load: float
    mttr_s: float
    sla_ms: float
    deadline_range_s: Optional[Tuple[float, float]]
    seed: int
    max_batch_size: int
    max_wait_ms: float
    len_bucket: int
    engine: str = "fast"

    @property
    def key(self) -> Tuple:
        return (
            "resilience",
            self.model,
            dataclasses.astuple(self.config),
            self.mode,
            self.pattern,
            self.mtbf_s,
            self.num_devices,
            self.policy,
            self.num_requests,
            self.load,
            self.mttr_s,
            self.sla_ms,
            self.deadline_range_s,
            self.seed,
            self.max_batch_size,
            self.max_wait_ms,
            self.len_bucket,
            self.engine,
        )

    @property
    def group(self) -> Tuple[str, str, str, str]:
        return ("resilience", self.config.name, self.mode, self.policy)

    def execute(self) -> ServingReport:
        experiment = ResilienceExperiment(
            model=self.model,
            config=self.config,
            mode=ExecutionMode(self.mode),
            pattern=self.pattern,
            load=self.load,
            mttr_s=self.mttr_s,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            sla_ms=self.sla_ms,
            deadline_range_s=self.deadline_range_s,
            len_bucket=self.len_bucket,
            seed=self.seed,
            engine=self.engine,
        )
        return experiment.simulate(
            self.mtbf_s, self.num_devices, self.policy, self.num_requests
        )


#: Reports installed by :func:`prime` (computed in a worker process or
#: replayed from the unit cache); consulted by ``.run`` before
#: simulating a point locally.
_PRIMED: Dict[Tuple, ServingReport] = {}


def plan(
    model: str = "BERT-B",
    config: SprintConfig = S_SPRINT,
    mtbfs: Sequence[float] = DEFAULT_MTBFS,
    fleets: Sequence[int] = DEFAULT_FLEETS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    requests_per_point: int = DEFAULT_REQUESTS_PER_POINT,
    seed: int = 0,
    **experiment_kwargs,
) -> List[ResilienceUnit]:
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    experiment = ResilienceExperiment(
        model=model, config=config, seed=seed, **experiment_kwargs
    )
    return [
        experiment._unit(mtbf_s, num_devices, policy, requests_per_point)
        for mtbf_s in mtbfs
        for num_devices in fleets
        for policy in policies
    ]


def prime(key: Tuple, report: ServingReport) -> None:
    """Install an externally computed point (parallel-runtime hook)."""
    _PRIMED[tuple(key)] = report


def clear_primed() -> None:
    _PRIMED.clear()


def retry_dividend(
    rows: Sequence[ResilienceRow],
) -> Dict[Tuple[float, int], float]:
    """Per (MTBF, fleet): goodput of the best retrying policy over the
    drop-on-first-failure baseline (1.0 when retrying never helps)."""
    base: Dict[Tuple[float, int], float] = {}
    best: Dict[Tuple[float, int], float] = {}
    for row in rows:
        cell = (row.mtbf_s, row.num_devices)
        if row.policy == "none":
            base[cell] = row.goodput_rps
        else:
            best[cell] = max(best.get(cell, 0.0), row.goodput_rps)
    return {
        cell: (best.get(cell, rate) / rate if rate > 0 else 1.0)
        for cell, rate in base.items()
    }


# ----------------------------------------------------------------------
# runner-compatible module-level API
# ----------------------------------------------------------------------
def run(
    model: str = "BERT-B",
    config: SprintConfig = S_SPRINT,
    mtbfs: Sequence[float] = DEFAULT_MTBFS,
    fleets: Sequence[int] = DEFAULT_FLEETS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    requests_per_point: int = DEFAULT_REQUESTS_PER_POINT,
    seed: int = 0,
    **experiment_kwargs,
) -> List[ResilienceRow]:
    experiment = ResilienceExperiment(
        model=model, config=config, seed=seed, **experiment_kwargs
    )
    return experiment.run(
        mtbfs=mtbfs,
        fleets=fleets,
        policies=policies,
        requests_per_point=requests_per_point,
    )


def format_table(rows: Sequence[ResilienceRow]) -> str:
    lines = [
        "Resilience study: availability & goodput under device failures",
        f"{'mtbf':>6} {'fleet':>5} {'policy':<8} {'avail':>7} "
        f"{'offer':>6} {'good':>6} {'drop':>6} {'retry':>6} "
        f"{'p99ms':>8} {'wasteduJ':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.mtbf_s:>6.1f} {r.num_devices:>5d} {r.policy:<8} "
            f"{r.availability:>7.2%} {r.offered_rps:>6.1f} "
            f"{r.goodput_rps:>6.1f} {r.drop_rate:>6.1%} "
            f"{r.retries:>6d} {r.p99_ms:>8.2f} {r.wasted_energy_uj:>9.2f}"
        )
    for (mtbf_s, fleet), ratio in sorted(retry_dividend(rows).items()):
        lines.append(
            f"retry dividend [mtbf {mtbf_s:g}s, fleet {fleet}]: "
            f"{ratio:.2f}x goodput vs drop-on-failure"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
