"""Serving study: load vs tail latency across execution modes.

Not a paper figure -- this is the ROADMAP's production-serving
extension.  For each arrival pattern (Poisson, bursty/MMPP, trace
replay) and each execution mode, a load sweep runs the same request
stream through the serving simulator and reports throughput, device
utilization, and p50/p95/p99 latency.  The headline derived metric is
*serving headroom*: the highest offered load each mode sustains while
keeping p99 latency within the SLA -- SPRINT's pruning shortens service
times, which compounds through queueing into disproportionate headroom.

The sweep is shardable: every (pattern, mode, load) point is an
independent :class:`ServingUnit` on the runtime's WorkUnit protocol
(``plan``/``prime``/``clear_primed``), so ``sprint-experiments serving
--jobs N`` spreads the points across worker processes.  Each point's
request stream is seeded by a stable hash of (experiment seed, pattern)
-- never by worker identity or enumeration order -- so artifacts are
byte-identical for every ``--jobs`` value.  Units group by mode so a
worker shard warms exactly one
:func:`~repro.serving.devices.shared_cost_model`.

Each point runs through the columnar fast engine
(:func:`repro.serving.engine.simulate_table`) by default -- exactly
equal, record for record, to the per-request reference loop
(``engine="reference"``) but batch-granular, which is what lets the
full sweep default to ``requests_per_point=4000`` (~10x the historical
traffic) at similar wall time.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configs import S_SPRINT, SprintConfig
from repro.obs import telemetry
from repro.obs.trace import TraceConfig, TraceRecorder
from repro.core.system import ExecutionMode
from repro.serving.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    PoissonProcess,
    TraceProcess,
    generate_request_table,
)
from repro.serving.batching import DynamicBatcher
from repro.serving.devices import ServiceCostModel, SprintDevice, shared_cost_model
from repro.serving.engine import simulate_table
from repro.serving.metrics import ServingReport, summarize, summarize_stream
from repro.serving.stream import RequestStream
from repro.serving.scheduler import ServingSimulator

DEFAULT_MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.PRUNING_ONLY,
    ExecutionMode.SPRINT,
)
DEFAULT_PATTERNS = ("poisson", "bursty", "trace")
DEFAULT_LOADS = (10.0, 20.0, 40.0, 80.0, 160.0)
#: Stream length per sweep point.  Sized for the columnar fast engine:
#: ~10x the traffic the per-request loop used to walk, at similar wall
#: time per point.
DEFAULT_REQUESTS_PER_POINT = 4000


def _resolve_count(
    num_requests: Optional[int], requests_per_point: Optional[int]
) -> int:
    """One stream length from the legacy and the scale knob.

    ``num_requests`` (the historical name) wins when given so existing
    call sites keep meaning what they said; otherwise the sweep-scale
    knob ``requests_per_point`` applies, defaulting to
    :data:`DEFAULT_REQUESTS_PER_POINT`.
    """
    if num_requests is not None:
        return num_requests
    if requests_per_point is not None:
        return requests_per_point
    return DEFAULT_REQUESTS_PER_POINT


def stream_seed(seed: int, pattern: str) -> int:
    """Deterministic request-stream seed for one (experiment, pattern).

    A stable hash of the pattern *name* (not its index in some tuple,
    which would make every unknown pattern collide on the same seed).
    The mode and the offered load are deliberately excluded: every mode
    faces byte-identical traffic at each (pattern, load) point, which
    is what makes the cross-mode headroom comparison fair.
    """
    digest = hashlib.sha256(f"{seed}:{pattern}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1  # non-negative 63-bit


@dataclass(frozen=True)
class ServingRow:
    """One (pattern, mode, offered load) point of the sweep."""

    pattern: str
    mode: str
    offered_rps: float
    throughput_rps: float
    utilization: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    sla_violation_rate: float
    mean_batch_size: float
    meets_sla: bool


def make_process(pattern: str, rate_rps: float) -> ArrivalProcess:
    """Instantiate one of the three arrival patterns at a mean rate.

    The bursty and trace processes are parameterized so their long-run
    mean matches ``rate_rps``, keeping the sweep iso-load across
    patterns.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if pattern == "poisson":
        return PoissonProcess(rate_rps=rate_rps)
    if pattern == "bursty":
        # Calm at 0.6x for 0.8 s, burst at 2.6x for 0.2 s -> mean 1.0x.
        return BurstyProcess(
            calm_rate_rps=0.6 * rate_rps,
            burst_rate_rps=2.6 * rate_rps,
            calm_dwell_s=0.8,
            burst_dwell_s=0.2,
        )
    if pattern == "trace":
        # A diurnal-style recorded profile replayed around the mean:
        # harmonic mean of the segment rates equals rate_rps.
        profile = [0.5, 1.0, 2.0, 1.0]
        k = sum(1.0 / f for f in profile) / len(profile)
        return TraceProcess.from_rate_profile(
            [f * rate_rps * k for f in profile], requests_per_segment=25
        )
    raise KeyError(f"unknown arrival pattern {pattern!r}")


class ServingExperiment:
    """The load-vs-tail-latency sweep over modes and arrival patterns.

    Parameters
    ----------
    model:
        Zoo model every request runs (per-request lengths still vary
        with its padding distribution).
    config:
        Chip configuration; ``num_devices`` chips serve the stream.
    sla_ms:
        p99 latency target the headroom analysis ranks loads against.
    engine:
        ``"fast"`` (default) simulates each point through the columnar
        batch-granular engine; ``"reference"`` walks the per-request
        event loop.  Both produce identical reports -- the reference
        exists to define the semantics and for equivalence testing.
        ``"stream"`` runs the same point out-of-core: a chunked
        :class:`~repro.serving.stream.RequestStream` through
        :func:`~repro.serving.metrics.summarize_stream`, holding one
        chunk plus fixed-size sketches instead of the whole table --
        identical exact aggregates, sketch-bounded percentiles.
    """

    def __init__(
        self,
        model: str = "BERT-B",
        config: SprintConfig = S_SPRINT,
        num_devices: int = 1,
        max_batch_size: int = 8,
        max_wait_ms: float = 10.0,
        sla_ms: float = 150.0,
        len_bucket: int = 32,
        seed: int = 0,
        engine: str = "fast",
    ):
        if engine not in ("fast", "reference", "stream"):
            raise ValueError(f"unknown engine {engine!r}")
        self.model = model
        self.config = config
        self.num_devices = num_devices
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.sla_ms = sla_ms
        self.len_bucket = len_bucket
        self.seed = seed
        self.engine = engine

    # ------------------------------------------------------------------
    def _cost_model(self, mode: ExecutionMode) -> ServiceCostModel:
        # One memoized cost model per mode, shared process-wide — the
        # whole sweep, and every ServingUnit a worker executes, warm
        # the same buckets.
        return shared_cost_model(
            self.config, mode, len_bucket=self.len_bucket, seed=self.seed
        )

    def _unit(
        self,
        pattern: str,
        mode: ExecutionMode,
        load: float,
        num_requests: int,
    ) -> "ServingUnit":
        """The work unit for one sweep point of this experiment."""
        return ServingUnit(
            model=self.model,
            config=self.config,
            pattern=pattern,
            mode=mode.value,
            load=load,
            num_requests=num_requests,
            sla_ms=self.sla_ms,
            seed=self.seed,
            num_devices=self.num_devices,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            len_bucket=self.len_bucket,
            engine=self.engine,
        )

    def _trace_recorder(self) -> Optional[TraceRecorder]:
        """A recorder when the active telemetry asks for traces.

        Tracing rides on the runner's ``--trace-out`` flag: the
        installed :class:`~repro.obs.telemetry.RunTelemetry` carries
        the output directory and the head/stride sampling knobs.
        Worker processes fork with the parent's telemetry, so sharded
        sweep points trace exactly like serial ones.
        """
        tele = telemetry.get_telemetry()
        if tele is None or tele.trace_dir is None:
            return None
        return TraceRecorder(
            TraceConfig(head=tele.trace_head, stride=tele.trace_stride)
        )

    def simulate(
        self,
        pattern: str,
        mode: ExecutionMode,
        rate_rps: float,
        num_requests: int,
    ) -> ServingReport:
        """One point, summarized (columnar fast path by default)."""
        process = make_process(pattern, rate_rps)
        if self.engine == "stream":
            # Out-of-core path: never materializes the whole table, so
            # there is no table to prime from or trace (request traces
            # would defeat the fixed-memory contract anyway).  The
            # cost model warms its length buckets lazily per chunk.
            stream = RequestStream(
                process,
                self.model,
                count=num_requests,
                seed=stream_seed(self.seed, pattern),
            )
            return summarize_stream(
                stream,
                self._cost_model(mode),
                config=self.config.name,
                mode=mode.value,
                pattern=pattern,
                offered_rps=process.mean_rate_rps,
                sla_s=self.sla_ms * 1e-3,
                num_devices=self.num_devices,
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_ms * 1e-3,
            )
        table = generate_request_table(
            process,
            self.model,
            count=num_requests,
            seed=stream_seed(self.seed, pattern),
        )
        cost = self._cost_model(mode)
        # Warm every length bucket the stream touches up front (one
        # batched cycle-model pass per bucket, shared across loads).
        cost.prime(table.specs[0], table.valid_len)
        recorder = self._trace_recorder()
        if self.engine == "fast":
            result = simulate_table(
                table,
                cost,
                num_devices=self.num_devices,
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_ms * 1e-3,
                recorder=recorder,
            )
        else:
            devices = [
                SprintDevice(i, cost) for i in range(self.num_devices)
            ]
            batcher = DynamicBatcher(
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_ms * 1e-3,
            )
            result = ServingSimulator(devices, batcher, recorder).run(
                table.to_requests()
            )
        if recorder is not None:
            recorder.write(
                Path(telemetry.get_telemetry().trace_dir)
                / f"serving-{pattern}-{mode.value}-{rate_rps:g}rps.json"
            )
        return summarize(
            result,
            config=self.config.name,
            mode=mode.value,
            pattern=pattern,
            offered_rps=process.mean_rate_rps,
            sla_s=self.sla_ms * 1e-3,
        )

    def run(
        self,
        loads: Sequence[float] = DEFAULT_LOADS,
        patterns: Sequence[str] = DEFAULT_PATTERNS,
        modes: Sequence[ExecutionMode] = DEFAULT_MODES,
        num_requests: Optional[int] = None,
        requests_per_point: Optional[int] = None,
    ) -> List[ServingRow]:
        count = _resolve_count(num_requests, requests_per_point)
        rows: List[ServingRow] = []
        for pattern in patterns:
            for mode in modes:
                for load in loads:
                    # A point the runtime already computed (in a worker
                    # or the unit cache) aggregates without re-running.
                    key = self._unit(pattern, mode, load, count).key
                    report = _PRIMED.get(key)
                    if report is None:
                        report = self.simulate(pattern, mode, load, count)
                    rows.append(
                        ServingRow(
                            pattern=pattern,
                            mode=mode.value,
                            offered_rps=load,
                            throughput_rps=report.throughput_rps,
                            utilization=report.utilization,
                            p50_ms=report.latency.p50_s * 1e3,
                            p95_ms=report.latency.p95_s * 1e3,
                            p99_ms=report.latency.p99_s * 1e3,
                            sla_violation_rate=report.sla_violation_rate,
                            mean_batch_size=report.mean_batch_size,
                            meets_sla=report.meets_sla(),
                        )
                    )
        return rows


@dataclass(frozen=True)
class ServingUnit:
    """One (pattern, mode, load) sweep point as a runtime WorkUnit.

    ``key`` embeds every parameter the point's report depends on, so
    it both deduplicates identical points and content-addresses the
    unit-granularity result cache.  Units group by mode so a worker
    shard warms exactly one shared cost model.
    """

    model: str
    config: SprintConfig
    pattern: str
    mode: str
    load: float
    num_requests: int
    sla_ms: float
    seed: int
    num_devices: int
    max_batch_size: int
    max_wait_ms: float
    len_bucket: int
    engine: str = "fast"

    @property
    def key(self) -> Tuple:
        # The config rides in by *field values*, not just its name: a
        # modified config with an unchanged name must not replay
        # another config's cached unit results.
        return (
            "serving",
            self.model,
            dataclasses.astuple(self.config),
            self.pattern,
            self.mode,
            self.load,
            self.num_requests,
            self.sla_ms,
            self.seed,
            self.num_devices,
            self.max_batch_size,
            self.max_wait_ms,
            self.len_bucket,
            self.engine,
        )

    @property
    def group(self) -> Tuple[str, str, str, str]:
        return ("serving", self.config.name, self.mode, self.pattern)

    def execute(self) -> ServingReport:
        experiment = ServingExperiment(
            model=self.model,
            config=self.config,
            num_devices=self.num_devices,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            sla_ms=self.sla_ms,
            len_bucket=self.len_bucket,
            seed=self.seed,
            engine=self.engine,
        )
        return experiment.simulate(
            self.pattern, ExecutionMode(self.mode), self.load,
            self.num_requests,
        )


#: Reports installed by :func:`prime` (computed in a worker process or
#: replayed from the unit cache); consulted by ``ServingExperiment.run``
#: before simulating a point locally.
_PRIMED: Dict[Tuple, ServingReport] = {}


def plan(
    model: str = "BERT-B",
    config: SprintConfig = S_SPRINT,
    loads: Sequence[float] = DEFAULT_LOADS,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    modes: Sequence[ExecutionMode] = DEFAULT_MODES,
    num_requests: Optional[int] = None,
    requests_per_point: Optional[int] = None,
    sla_ms: float = 150.0,
    seed: int = 0,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_ms: float = 10.0,
    len_bucket: int = 32,
    engine: str = "fast",
) -> List[ServingUnit]:
    """Work units a same-argument :func:`run` consumes (for sharding).

    Mirrors :func:`run`'s signature (including the experiment kwargs it
    forwards) so the runtime can plan exactly the points a serial run
    would simulate.
    """
    count = _resolve_count(num_requests, requests_per_point)
    experiment = ServingExperiment(
        model=model, config=config, num_devices=num_devices,
        max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
        sla_ms=sla_ms, len_bucket=len_bucket, seed=seed, engine=engine,
    )
    return [
        experiment._unit(pattern, mode, load, count)
        for pattern in patterns
        for mode in modes
        for load in loads
    ]


def prime(key: Tuple, report: ServingReport) -> None:
    """Install an externally computed point (parallel-runtime hook)."""
    _PRIMED[tuple(key)] = report


def clear_primed() -> None:
    _PRIMED.clear()


def max_sla_load(rows: Sequence[ServingRow]) -> Dict[Tuple[str, str], float]:
    """Serving headroom: per (pattern, mode), the highest offered load
    whose p99 stayed within the SLA (0.0 when none did)."""
    best: Dict[Tuple[str, str], float] = {}
    for row in rows:
        key = (row.pattern, row.mode)
        best.setdefault(key, 0.0)
        if row.meets_sla:
            best[key] = max(best[key], row.offered_rps)
    return best


# ----------------------------------------------------------------------
# runner-compatible module-level API
# ----------------------------------------------------------------------
def run(
    model: str = "BERT-B",
    config: SprintConfig = S_SPRINT,
    loads: Sequence[float] = DEFAULT_LOADS,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    modes: Sequence[ExecutionMode] = DEFAULT_MODES,
    num_requests: Optional[int] = None,
    requests_per_point: Optional[int] = None,
    sla_ms: float = 150.0,
    seed: int = 0,
    **experiment_kwargs,
) -> List[ServingRow]:
    experiment = ServingExperiment(
        model=model, config=config, sla_ms=sla_ms, seed=seed,
        **experiment_kwargs,
    )
    return experiment.run(
        loads=loads, patterns=patterns, modes=modes,
        num_requests=num_requests, requests_per_point=requests_per_point,
    )


def format_table(rows: Sequence[ServingRow]) -> str:
    lines = [
        "Serving study: load vs tail latency (per arrival pattern/mode)",
        f"{'pattern':<8} {'mode':<13} {'rps':>7} {'thru':>7} {'util':>6} "
        f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8} {'viol':>6} {'SLA':>4}",
    ]
    for r in rows:
        lines.append(
            f"{r.pattern:<8} {r.mode:<13} {r.offered_rps:>7.1f} "
            f"{r.throughput_rps:>7.1f} {r.utilization:>6.1%} "
            f"{r.p50_ms:>8.2f} {r.p95_ms:>8.2f} {r.p99_ms:>8.2f} "
            f"{r.sla_violation_rate:>6.1%} "
            f"{'ok' if r.meets_sla else 'MISS':>4}"
        )
    headroom = max_sla_load(rows)
    patterns = sorted({p for p, _ in headroom})
    for pattern in patterns:
        base = headroom.get((pattern, ExecutionMode.BASELINE.value), 0.0)
        parts = []
        for (pat, mode), load in sorted(headroom.items()):
            if pat != pattern:
                continue
            ratio = f" ({load / base:.1f}x)" if base > 0 else ""
            parts.append(f"{mode} {load:.0f} rps{ratio}")
        lines.append(
            f"headroom @ p99 SLA [{pattern}]: " + ", ".join(parts)
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
