"""Serving study: load vs tail latency across execution modes.

Not a paper figure -- this is the ROADMAP's production-serving
extension.  For each arrival pattern (Poisson, bursty/MMPP, trace
replay) and each execution mode, a load sweep runs the same request
stream through the serving simulator and reports throughput, device
utilization, and p50/p95/p99 latency.  The headline derived metric is
*serving headroom*: the highest offered load each mode sustains while
keeping p99 latency within the SLA -- SPRINT's pruning shortens service
times, which compounds through queueing into disproportionate headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.configs import S_SPRINT, SprintConfig
from repro.core.system import ExecutionMode
from repro.serving.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    PoissonProcess,
    TraceProcess,
    generate_requests,
)
from repro.serving.batching import DynamicBatcher
from repro.serving.devices import ServiceCostModel, SprintDevice
from repro.serving.metrics import ServingReport, summarize
from repro.serving.scheduler import ServingSimulator

DEFAULT_MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.PRUNING_ONLY,
    ExecutionMode.SPRINT,
)
DEFAULT_PATTERNS = ("poisson", "bursty", "trace")
DEFAULT_LOADS = (10.0, 20.0, 40.0, 80.0, 160.0)


@dataclass(frozen=True)
class ServingRow:
    """One (pattern, mode, offered load) point of the sweep."""

    pattern: str
    mode: str
    offered_rps: float
    throughput_rps: float
    utilization: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    sla_violation_rate: float
    mean_batch_size: float
    meets_sla: bool


def make_process(pattern: str, rate_rps: float) -> ArrivalProcess:
    """Instantiate one of the three arrival patterns at a mean rate.

    The bursty and trace processes are parameterized so their long-run
    mean matches ``rate_rps``, keeping the sweep iso-load across
    patterns.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if pattern == "poisson":
        return PoissonProcess(rate_rps=rate_rps)
    if pattern == "bursty":
        # Calm at 0.6x for 0.8 s, burst at 2.6x for 0.2 s -> mean 1.0x.
        return BurstyProcess(
            calm_rate_rps=0.6 * rate_rps,
            burst_rate_rps=2.6 * rate_rps,
            calm_dwell_s=0.8,
            burst_dwell_s=0.2,
        )
    if pattern == "trace":
        # A diurnal-style recorded profile replayed around the mean:
        # harmonic mean of the segment rates equals rate_rps.
        profile = [0.5, 1.0, 2.0, 1.0]
        k = sum(1.0 / f for f in profile) / len(profile)
        return TraceProcess.from_rate_profile(
            [f * rate_rps * k for f in profile], requests_per_segment=25
        )
    raise KeyError(f"unknown arrival pattern {pattern!r}")


class ServingExperiment:
    """The load-vs-tail-latency sweep over modes and arrival patterns.

    Parameters
    ----------
    model:
        Zoo model every request runs (per-request lengths still vary
        with its padding distribution).
    config:
        Chip configuration; ``num_devices`` chips serve the stream.
    sla_ms:
        p99 latency target the headroom analysis ranks loads against.
    """

    def __init__(
        self,
        model: str = "BERT-B",
        config: SprintConfig = S_SPRINT,
        num_devices: int = 1,
        max_batch_size: int = 8,
        max_wait_ms: float = 10.0,
        sla_ms: float = 150.0,
        len_bucket: int = 32,
        seed: int = 0,
    ):
        self.model = model
        self.config = config
        self.num_devices = num_devices
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.sla_ms = sla_ms
        self.len_bucket = len_bucket
        self.seed = seed
        self._cost_models: Dict[str, ServiceCostModel] = {}

    # ------------------------------------------------------------------
    def _cost_model(self, mode: ExecutionMode) -> ServiceCostModel:
        # One cache per mode, shared across the whole sweep.
        if mode.value not in self._cost_models:
            self._cost_models[mode.value] = ServiceCostModel(
                self.config, mode, len_bucket=self.len_bucket,
                seed=self.seed,
            )
        return self._cost_models[mode.value]

    def simulate(
        self,
        pattern: str,
        mode: ExecutionMode,
        rate_rps: float,
        num_requests: int,
    ) -> ServingReport:
        """One point: a full event-driven run, summarized."""
        process = make_process(pattern, rate_rps)
        # The stream seed mixes in the pattern but NOT the mode, so all
        # modes face byte-identical traffic at each (pattern, load).
        pattern_ix = (
            DEFAULT_PATTERNS.index(pattern)
            if pattern in DEFAULT_PATTERNS
            else len(DEFAULT_PATTERNS)
        )
        stream_seed = self.seed * 1000 + pattern_ix
        requests = generate_requests(
            process, self.model, count=num_requests, seed=stream_seed
        )
        cost = self._cost_model(mode)
        if requests:
            # Warm every length bucket the stream touches up front (one
            # batched cycle-model pass per bucket, shared across loads).
            cost.prime(
                requests[0].spec, [r.valid_len for r in requests]
            )
        devices = [
            SprintDevice(i, cost) for i in range(self.num_devices)
        ]
        batcher = DynamicBatcher(
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_ms * 1e-3,
        )
        result = ServingSimulator(devices, batcher).run(requests)
        return summarize(
            result,
            config=self.config.name,
            mode=mode.value,
            pattern=pattern,
            offered_rps=process.mean_rate_rps,
            sla_s=self.sla_ms * 1e-3,
        )

    def run(
        self,
        loads: Sequence[float] = DEFAULT_LOADS,
        patterns: Sequence[str] = DEFAULT_PATTERNS,
        modes: Sequence[ExecutionMode] = DEFAULT_MODES,
        num_requests: int = 400,
    ) -> List[ServingRow]:
        rows: List[ServingRow] = []
        for pattern in patterns:
            for mode in modes:
                for load in loads:
                    report = self.simulate(
                        pattern, mode, load, num_requests
                    )
                    rows.append(
                        ServingRow(
                            pattern=pattern,
                            mode=mode.value,
                            offered_rps=load,
                            throughput_rps=report.throughput_rps,
                            utilization=report.utilization,
                            p50_ms=report.latency.p50_s * 1e3,
                            p95_ms=report.latency.p95_s * 1e3,
                            p99_ms=report.latency.p99_s * 1e3,
                            sla_violation_rate=report.sla_violation_rate,
                            mean_batch_size=report.mean_batch_size,
                            meets_sla=report.meets_sla(),
                        )
                    )
        return rows


def max_sla_load(rows: Sequence[ServingRow]) -> Dict[Tuple[str, str], float]:
    """Serving headroom: per (pattern, mode), the highest offered load
    whose p99 stayed within the SLA (0.0 when none did)."""
    best: Dict[Tuple[str, str], float] = {}
    for row in rows:
        key = (row.pattern, row.mode)
        best.setdefault(key, 0.0)
        if row.meets_sla:
            best[key] = max(best[key], row.offered_rps)
    return best


# ----------------------------------------------------------------------
# runner-compatible module-level API
# ----------------------------------------------------------------------
def run(
    model: str = "BERT-B",
    config: SprintConfig = S_SPRINT,
    loads: Sequence[float] = DEFAULT_LOADS,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    modes: Sequence[ExecutionMode] = DEFAULT_MODES,
    num_requests: int = 400,
    sla_ms: float = 150.0,
    seed: int = 0,
    **experiment_kwargs,
) -> List[ServingRow]:
    experiment = ServingExperiment(
        model=model, config=config, sla_ms=sla_ms, seed=seed,
        **experiment_kwargs,
    )
    return experiment.run(
        loads=loads, patterns=patterns, modes=modes,
        num_requests=num_requests,
    )


def format_table(rows: Sequence[ServingRow]) -> str:
    lines = [
        "Serving study: load vs tail latency (per arrival pattern/mode)",
        f"{'pattern':<8} {'mode':<13} {'rps':>7} {'thru':>7} {'util':>6} "
        f"{'p50ms':>8} {'p95ms':>8} {'p99ms':>8} {'viol':>6} {'SLA':>4}",
    ]
    for r in rows:
        lines.append(
            f"{r.pattern:<8} {r.mode:<13} {r.offered_rps:>7.1f} "
            f"{r.throughput_rps:>7.1f} {r.utilization:>6.1%} "
            f"{r.p50_ms:>8.2f} {r.p95_ms:>8.2f} {r.p99_ms:>8.2f} "
            f"{r.sla_violation_rate:>6.1%} "
            f"{'ok' if r.meets_sla else 'MISS':>4}"
        )
    headroom = max_sla_load(rows)
    patterns = sorted({p for p, _ in headroom})
    for pattern in patterns:
        base = headroom.get((pattern, ExecutionMode.BASELINE.value), 0.0)
        parts = []
        for (pat, mode), load in sorted(headroom.items()):
            if pat != pattern:
                continue
            ratio = f" ({load / base:.1f}x)" if base > 0 else ""
            parts.append(f"{mode} {load:.0f} rps{ratio}")
        lines.append(
            f"headroom @ p99 SLA [{pattern}]: " + ", ".join(parts)
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
