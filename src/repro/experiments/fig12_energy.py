"""Figure 12: total energy reduction over the iso-resource baseline.

Includes on-chip accelerator and ReRAM main memory.  Paper geomeans:
19.56 / 16.82 / 12.03x for S/M/L-SPRINT, with the ordering *inverting*
on the Synth models (L > M > S) because even 64 KB holds only a sliver
of a 2K-4K sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.configs import SprintConfig
from repro.core.system import ExecutionMode
from repro.experiments import sweep
from repro.experiments.sweep import ALL_CONFIGS, ALL_MODELS, grid


@dataclass(frozen=True)
class Fig12Row:
    model: str
    config: str
    energy_reduction: float
    sprint_energy_pj: float
    baseline_energy_pj: float


MODES = (ExecutionMode.BASELINE, ExecutionMode.SPRINT)


def plan(
    models: Sequence[str] = ALL_MODELS,
    configs: Sequence[SprintConfig] = ALL_CONFIGS,
    num_samples: int = 2,
    seed: int = 1,
):
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    return sweep.plan_units(models, configs, MODES, num_samples, seed)


#: Runtime hooks: unit results shipped back by the pool land in the
#: shared sweep memo that :func:`run` reads through.
prime = sweep.prime
clear_primed = sweep.clear_primed


def run(
    models: Sequence[str] = ALL_MODELS,
    configs: Sequence[SprintConfig] = ALL_CONFIGS,
    num_samples: int = 2,
    seed: int = 1,
) -> List[Fig12Row]:
    reports = grid(models, configs, MODES, num_samples, seed)
    rows: List[Fig12Row] = []
    for model in models:
        for config in configs:
            base = reports[(model, config.name, ExecutionMode.BASELINE.value)]
            sprint = reports[(model, config.name, ExecutionMode.SPRINT.value)]
            rows.append(
                Fig12Row(
                    model=model,
                    config=config.name,
                    energy_reduction=sprint.energy_reduction_vs(base),
                    sprint_energy_pj=sprint.total_energy_pj,
                    baseline_energy_pj=base.total_energy_pj,
                )
            )
    return rows


def geomeans(rows: List[Fig12Row]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for config in sorted({r.config for r in rows}):
        sel = [r.energy_reduction for r in rows if r.config == config]
        out[config] = float(np.exp(np.mean(np.log(sel))))
    return out


def format_table(rows: List[Fig12Row]) -> str:
    lines = [
        "Figure 12: energy reduction vs iso-resource baseline",
        f"{'model':<12} {'config':<9} {'reduction':>10} "
        f"{'SPRINT uJ':>10} {'base uJ':>10}",
    ]
    for r in rows:
        lines.append(
            f"{r.model:<12} {r.config:<9} {r.energy_reduction:>9.2f}x "
            f"{r.sprint_energy_pj / 1e6:>9.2f} "
            f"{r.baseline_energy_pj / 1e6:>9.2f}"
        )
    for config, g in geomeans(rows).items():
        lines.append(f"geomean {config}: {g:.2f}x")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
