"""One module per paper figure/table, plus a run-everything CLI.

Every module exposes ``run(...)`` returning structured rows and
``format_table(rows)`` printing the same series the paper reports.
``repro.experiments.runner`` drives them all and writes the
paper-vs-measured summary consumed by EXPERIMENTS.md.
"""

from repro.experiments import (
    ablations,
    fig1_memory_energy,
    fig2_heatmap,
    fig3_overlap,
    fig5_bit_sensitivity,
    fig8_imbalance,
    fig9_accuracy,
    fig10_data_movement,
    fig11_speedup,
    fig12_energy,
    fig13_breakdown,
    ffn_end_to_end,
    sensitivity,
    serving,
    table3_comparison,
)

__all__ = [
    "ablations",
    "fig1_memory_energy",
    "fig2_heatmap",
    "fig3_overlap",
    "fig5_bit_sensitivity",
    "fig8_imbalance",
    "fig9_accuracy",
    "fig10_data_movement",
    "fig11_speedup",
    "fig12_energy",
    "fig13_breakdown",
    "ffn_end_to_end",
    "sensitivity",
    "serving",
    "table3_comparison",
]
