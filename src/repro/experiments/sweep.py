"""Shared model x config x mode simulation sweep with memoization.

Figures 10-13 all consume the same grid of simulation reports; this
module runs each (model, config, mode, samples, seed) cell once per
process and caches the result.  Each model's calibrated workload is
generated once and shared across every (config, mode) cell, and each
cell runs through the batched ``simulate_workload`` core.

The cell grid is also the unit of parallelism for the experiment
runtime (:mod:`repro.runtime.pool`): each cell wraps into a
:class:`GridUnit` — the grid's adapter onto the runtime's WorkUnit
protocol (:mod:`repro.runtime.units`) — worker processes ``execute()``
units remotely, and ``prime`` installs the shipped-back reports so the
consuming experiments aggregate without re-simulating.  Every
grid-backed experiment module (fig10-13, ffn, table3) builds its
``plan()`` from :func:`plan_units` and aliases :func:`prime` /
:func:`clear_primed` here, so one shared memo serves them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.core.configs import L_SPRINT, M_SPRINT, S_SPRINT, SprintConfig
from repro.core.results import SimulationReport
from repro.core.system import ExecutionMode, SprintSystem
from repro.models.zoo import get_model
from repro.workloads.generator import Workload, generate_workload

ALL_MODELS = (
    "BERT-B", "BERT-L", "ALBERT-XL", "ALBERT-XXL",
    "ViT-B", "GPT-2-L", "Synth-1", "Synth-2",
)
ALL_CONFIGS: Tuple[SprintConfig, ...] = (S_SPRINT, M_SPRINT, L_SPRINT)


def samples_for(model_name: str, requested: int) -> int:
    """Cap sample count for the very long Synth sequences (speed)."""
    spec = get_model(model_name)
    if spec.seq_len > 1024:
        return max(1, requested // 2)
    return requested


@lru_cache(maxsize=None)
def workload_for(model_name: str, num_samples: int, seed: int) -> Workload:
    """One calibrated workload per (model, samples, seed), shared by
    every config and mode cell of the grid (mask generation dominates
    small sweeps otherwise)."""
    spec = get_model(model_name)
    return generate_workload(
        seq_len=spec.seq_len,
        pruning_rate=spec.pruning_rate,
        padding_ratio=spec.padding_ratio,
        num_samples=num_samples,
        locality=spec.locality,
        causal=spec.causal,
        seed=seed,
    )


#: One grid cell: (model, config name, mode value, num_samples, seed).
#: ``num_samples`` is the *requested* count; ``samples_for`` capping is
#: internal to the cell so keys stay stable across call sites.
CellKey = Tuple[str, str, str, int, int]

#: Reports installed by :func:`prime` (e.g. computed in a worker
#: process and shipped back); consulted before the local memo.
_PRIMED: Dict[CellKey, SimulationReport] = {}


def cells(
    models: Sequence[str],
    configs: Sequence[SprintConfig],
    modes: Sequence[ExecutionMode],
    num_samples: int = 2,
    seed: int = 1,
) -> List[CellKey]:
    """The cell keys a same-argument :func:`grid` call will consume."""
    return [
        (model, config.name, mode.value, num_samples, seed)
        for model in models
        for config in configs
        for mode in modes
    ]


def prime(key: CellKey, report: SimulationReport) -> None:
    """Install an externally computed cell (parallel-runtime hook)."""
    _PRIMED[tuple(key)] = report


def clear_primed() -> None:
    _PRIMED.clear()


@dataclass(frozen=True)
class GridUnit:
    """One sweep cell as a runtime WorkUnit.

    ``key`` is the cell key itself (it already carries every parameter
    — model, config name, mode, sample count, seed — that determines
    the report).  Units group by (model, samples, seed) so a shard
    shares one calibrated workload across its config/mode cells.
    """

    cell: CellKey

    @property
    def key(self) -> CellKey:
        return self.cell

    @property
    def group(self) -> Tuple[str, int, int]:
        return (self.cell[0], self.cell[3], self.cell[4])

    def execute(self) -> SimulationReport:
        return simulate(*self.cell)


def plan_units(
    models: Sequence[str],
    configs: Sequence[SprintConfig],
    modes: Sequence[ExecutionMode],
    num_samples: int = 2,
    seed: int = 1,
) -> List[GridUnit]:
    """The work units a same-argument :func:`grid` call will consume."""
    return [
        GridUnit(cell)
        for cell in cells(models, configs, modes, num_samples, seed)
    ]


def simulate(
    model_name: str,
    config_name: str,
    mode_value: str,
    num_samples: int = 2,
    seed: int = 1,
) -> SimulationReport:
    """One memoized simulation cell (batched over the shared workload)."""
    key = (model_name, config_name, mode_value, num_samples, seed)
    primed = _PRIMED.get(key)
    if primed is not None:
        return primed
    return _simulate(*key)


@lru_cache(maxsize=None)
def _simulate(
    model_name: str,
    config_name: str,
    mode_value: str,
    num_samples: int,
    seed: int,
) -> SimulationReport:
    config = {c.name: c for c in ALL_CONFIGS}[config_name]
    system = SprintSystem(config)
    workload = workload_for(
        model_name, samples_for(model_name, num_samples), seed
    )
    return system.simulate_workload(
        workload, ExecutionMode(mode_value), model_name=model_name
    )


def grid(
    models: Sequence[str],
    configs: Sequence[SprintConfig],
    modes: Sequence[ExecutionMode],
    num_samples: int = 2,
    seed: int = 1,
) -> Dict[Tuple[str, str, str], SimulationReport]:
    """Run (and cache) the full grid; keys are (model, config, mode)."""
    out: Dict[Tuple[str, str, str], SimulationReport] = {}
    for model in models:
        for config in configs:
            for mode in modes:
                out[(model, config.name, mode.value)] = simulate(
                    model, config.name, mode.value, num_samples, seed
                )
    return out
