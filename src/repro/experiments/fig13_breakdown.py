"""Figure 13: M-SPRINT energy breakdown, normalized to the baseline.

Per model, three stacked bars: baseline (=100%), pruning-only, and full
SPRINT (in-ReRAM pruning), split into the eight Figure 13 categories.
Paper headlines: baseline spends ~47.8% on ReRAM reads (except ViT);
pruning-only lands around 1.9-2.0x savings (ViT 1.4x); SPRINT's bar is
dominated by ReRAM *writes* with in-memory pruning overhead ~4%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.configs import M_SPRINT, SprintConfig
from repro.core.system import ExecutionMode
from repro.energy.model import CATEGORIES
from repro.experiments import sweep
from repro.experiments.sweep import ALL_MODELS, grid


@dataclass(frozen=True)
class Fig13Row:
    model: str
    scenario: str  # baseline | pruning_only | sprint
    #: Each category's share of the *baseline* total (so the baseline
    #: scenario's fractions sum to 1.0 and the others to 1/savings).
    fractions: Dict[str, float] = field(default_factory=dict)

    @property
    def total_fraction(self) -> float:
        return sum(self.fractions.values())

    @property
    def savings(self) -> float:
        total = self.total_fraction
        return 1.0 / total if total > 0 else float("inf")


MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.PRUNING_ONLY,
    ExecutionMode.SPRINT,
)


def plan(
    models: Sequence[str] = ALL_MODELS,
    config: SprintConfig = M_SPRINT,
    num_samples: int = 2,
    seed: int = 1,
):
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    return sweep.plan_units(models, (config,), MODES, num_samples, seed)


#: Runtime hooks: unit results shipped back by the pool land in the
#: shared sweep memo that :func:`run` reads through.
prime = sweep.prime
clear_primed = sweep.clear_primed


def run(
    models: Sequence[str] = ALL_MODELS,
    config: SprintConfig = M_SPRINT,
    num_samples: int = 2,
    seed: int = 1,
) -> List[Fig13Row]:
    reports = grid(models, (config,), MODES, num_samples, seed)
    rows: List[Fig13Row] = []
    for model in models:
        base = reports[(model, config.name, ExecutionMode.BASELINE.value)]
        base_total = base.total_energy_pj
        for mode, label in (
            (ExecutionMode.BASELINE, "baseline"),
            (ExecutionMode.PRUNING_ONLY, "pruning_only"),
            (ExecutionMode.SPRINT, "sprint"),
        ):
            report = reports[(model, config.name, mode.value)]
            fractions = {
                cat: report.energy.pj[cat] / base_total for cat in CATEGORIES
            }
            rows.append(
                Fig13Row(model=model, scenario=label, fractions=fractions)
            )
    return rows


def savings_by_model(rows: List[Fig13Row]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for r in rows:
        if r.scenario == "baseline":
            continue
        out.setdefault(r.model, {})[r.scenario] = r.savings
    return out


def format_table(rows: List[Fig13Row]) -> str:
    header = f"{'model':<12} {'scenario':<13}" + "".join(
        f"{c[:9]:>10}" for c in CATEGORIES
    ) + f"{'total':>8}"
    lines = ["Figure 13: M-SPRINT energy breakdown (fraction of baseline)",
             header]
    for r in rows:
        vals = "".join(f"{r.fractions[c]:>10.4f}" for c in CATEGORIES)
        lines.append(
            f"{r.model:<12} {r.scenario:<13}{vals}{r.total_fraction:>8.4f}"
        )
    for model, s in savings_by_model(rows).items():
        lines.append(
            f"{model}: pruning-only {s['pruning_only']:.2f}x, "
            f"SPRINT {s['sprint']:.2f}x"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
