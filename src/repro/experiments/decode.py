"""Generative decode study: SPRINT pruning vs autoregressive growth.

Not a paper figure -- the ROADMAP's continuous-batching extension of
the serving study.  Each point offers the same *token* load (arrival
rate = ``token_rate_rps / mean_output_tokens``) while the mean output
length sweeps from prefill-dominated traffic (short outputs: every
token pays a full prompt pass) to decode-dominated traffic (long
outputs: most tokens are single-step decodes over a grown attention
context).  Per execution mode it reports time-to-first-token,
time-between-tokens, tokens/s, and energy/token -- the decode-phase
interaction SPRINT's pruning targets: the per-token attention share
grows with context, and pruning flattens exactly that term.

The sweep is shardable from day one: every (mode, mean output length)
point is an independent :class:`DecodeUnit` on the runtime's WorkUnit
protocol (``plan``/``prime``/``clear_primed``), grouped by mode so a
worker shard warms exactly one shared cost model.  Streams are seeded
by a stable hash of (experiment seed, mean output length) -- never by
worker identity -- so artifacts are byte-identical at every ``--jobs``
value.

Every point runs through the event-driven columnar decode engine
(:func:`repro.serving.engine.simulate_table` routes generative tables
to :mod:`repro.serving.decode`), pinned bitwise-equal to the
:class:`~repro.serving.scheduler.GenerativeServingSimulator` reference
loop (``engine="reference"``).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configs import S_SPRINT, SprintConfig
from repro.core.system import ExecutionMode
from repro.obs import telemetry
from repro.obs.trace import TraceConfig, TraceRecorder
from repro.serving.arrivals import PoissonProcess, generate_request_table
from repro.serving.batching import ContinuousBatcher
from repro.serving.devices import (
    ServiceCostModel,
    SprintDevice,
    shared_cost_model,
)
from repro.serving.engine import simulate_table
from repro.serving.metrics import ServingReport, summarize
from repro.serving.scheduler import GenerativeServingSimulator

DEFAULT_MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.PRUNING_ONLY,
    ExecutionMode.SPRINT,
)
#: The decode-growth axis: mean output tokens per request, prefill-
#: dominated (2) through decode-dominated (64).
DEFAULT_MEAN_OUTPUT_LENS = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
#: Offered token throughput, held constant across the sweep so points
#: differ only in how those tokens split into requests.
DEFAULT_TOKEN_RATE_RPS = 400.0
DEFAULT_REQUESTS_PER_POINT = 1500


def stream_seed(seed: int, mean_output_tokens: float) -> int:
    """Deterministic stream seed for one (experiment, output-length)
    point.  The mode is excluded: every mode faces byte-identical
    traffic at each point, keeping the cross-mode comparison fair."""
    digest = hashlib.sha256(
        f"{seed}:decode:{mean_output_tokens!r}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1  # non-negative 63-bit


@dataclass(frozen=True)
class DecodeRow:
    """One (mode, mean output length) point of the sweep."""

    mode: str
    mean_output_tokens: float
    offered_rps: float
    token_rate_rps: float
    tokens_per_s: float
    utilization: float
    ttft_p50_ms: float
    ttft_p99_ms: float
    tbt_p50_ms: float
    tbt_p99_ms: float
    energy_uj_per_token: float
    mean_step_batch: float


class DecodeExperiment:
    """The iso-token-load decode sweep over execution modes.

    Parameters
    ----------
    model:
        Zoo model every request runs.  The default (``BERT-B``) has a
        padded-length prompt distribution, leaving ``seq_len -
        valid_len`` tokens of context headroom for output growth;
        zero-padding models (``ViT-B``, ``GPT-2-L``) cap at one output
        token and degenerate to prefill-only traffic.
    engine:
        ``"fast"`` (default) routes each point through the columnar
        decode engine; ``"reference"`` walks the per-request
        continuous-batching event loop.  Identical reports either way.
    """

    def __init__(
        self,
        model: str = "BERT-B",
        config: SprintConfig = S_SPRINT,
        num_devices: int = 1,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        len_bucket: int = 32,
        seed: int = 0,
        engine: str = "fast",
    ):
        if engine not in ("fast", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        self.model = model
        self.config = config
        self.num_devices = num_devices
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.len_bucket = len_bucket
        self.seed = seed
        self.engine = engine

    # ------------------------------------------------------------------
    def _cost_model(self, mode: ExecutionMode) -> ServiceCostModel:
        return shared_cost_model(
            self.config, mode, len_bucket=self.len_bucket, seed=self.seed
        )

    def _unit(
        self,
        mode: ExecutionMode,
        mean_output_tokens: float,
        token_rate_rps: float,
        num_requests: int,
    ) -> "DecodeUnit":
        return DecodeUnit(
            model=self.model,
            config=self.config,
            mode=mode.value,
            mean_output_tokens=mean_output_tokens,
            token_rate_rps=token_rate_rps,
            num_requests=num_requests,
            seed=self.seed,
            num_devices=self.num_devices,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            len_bucket=self.len_bucket,
            engine=self.engine,
        )

    def _trace_recorder(self) -> Optional[TraceRecorder]:
        tele = telemetry.get_telemetry()
        if tele is None or tele.trace_dir is None:
            return None
        return TraceRecorder(
            TraceConfig(head=tele.trace_head, stride=tele.trace_stride)
        )

    def simulate(
        self,
        mode: ExecutionMode,
        mean_output_tokens: float,
        token_rate_rps: float,
        num_requests: int,
    ) -> ServingReport:
        """One point, summarized (columnar decode engine by default)."""
        rate_rps = token_rate_rps / mean_output_tokens
        process = PoissonProcess(rate_rps=rate_rps)
        table = generate_request_table(
            process,
            self.model,
            count=num_requests,
            seed=stream_seed(self.seed, mean_output_tokens),
            mean_output_tokens=mean_output_tokens,
        )
        cost = self._cost_model(mode)
        # Warm every prefill bucket up front; decode buckets derive
        # from the same cache entries (contexts stay within seq_len).
        cost.prime(table.specs[0], table.valid_len)
        recorder = self._trace_recorder()
        if self.engine == "fast":
            result = simulate_table(
                table,
                cost,
                num_devices=self.num_devices,
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_ms * 1e-3,
                recorder=recorder,
            )
        else:
            devices = [
                SprintDevice(i, cost) for i in range(self.num_devices)
            ]
            batcher = ContinuousBatcher(
                max_batch_size=self.max_batch_size,
                max_wait_s=self.max_wait_ms * 1e-3,
            )
            result = GenerativeServingSimulator(
                devices, batcher, recorder
            ).run(table.to_requests())
        if recorder is not None:
            recorder.write(
                Path(telemetry.get_telemetry().trace_dir)
                / f"decode-{mode.value}-{mean_output_tokens:g}tok.json"
            )
        return summarize(
            result,
            config=self.config.name,
            mode=mode.value,
            pattern="poisson",
            offered_rps=process.mean_rate_rps,
        )

    def run(
        self,
        mean_output_lens: Sequence[float] = DEFAULT_MEAN_OUTPUT_LENS,
        modes: Sequence[ExecutionMode] = DEFAULT_MODES,
        token_rate_rps: float = DEFAULT_TOKEN_RATE_RPS,
        requests_per_point: int = DEFAULT_REQUESTS_PER_POINT,
    ) -> List[DecodeRow]:
        rows: List[DecodeRow] = []
        for mode in modes:
            for mean_out in mean_output_lens:
                key = self._unit(
                    mode, mean_out, token_rate_rps, requests_per_point
                ).key
                report = _PRIMED.get(key)
                if report is None:
                    report = self.simulate(
                        mode, mean_out, token_rate_rps, requests_per_point
                    )
                rows.append(
                    DecodeRow(
                        mode=mode.value,
                        mean_output_tokens=mean_out,
                        offered_rps=report.offered_rps,
                        token_rate_rps=token_rate_rps,
                        tokens_per_s=report.tokens_per_s,
                        utilization=report.utilization,
                        ttft_p50_ms=report.ttft.p50_s * 1e3,
                        ttft_p99_ms=report.ttft.p99_s * 1e3,
                        tbt_p50_ms=report.tbt.p50_s * 1e3,
                        tbt_p99_ms=report.tbt.p99_s * 1e3,
                        energy_uj_per_token=report.energy_uj_per_token,
                        mean_step_batch=report.mean_batch_size,
                    )
                )
        return rows


@dataclass(frozen=True)
class DecodeUnit:
    """One (mode, mean output length) point as a runtime WorkUnit."""

    model: str
    config: SprintConfig
    mode: str
    mean_output_tokens: float
    token_rate_rps: float
    num_requests: int
    seed: int
    num_devices: int
    max_batch_size: int
    max_wait_ms: float
    len_bucket: int
    engine: str = "fast"

    @property
    def key(self) -> Tuple:
        return (
            "decode",
            self.model,
            dataclasses.astuple(self.config),
            self.mode,
            self.mean_output_tokens,
            self.token_rate_rps,
            self.num_requests,
            self.seed,
            self.num_devices,
            self.max_batch_size,
            self.max_wait_ms,
            self.len_bucket,
            self.engine,
        )

    @property
    def group(self) -> Tuple[str, str, str]:
        # Group by mode: a worker shard warms one shared cost model.
        return ("decode", self.config.name, self.mode)

    def execute(self) -> ServingReport:
        experiment = DecodeExperiment(
            model=self.model,
            config=self.config,
            num_devices=self.num_devices,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            len_bucket=self.len_bucket,
            seed=self.seed,
            engine=self.engine,
        )
        return experiment.simulate(
            ExecutionMode(self.mode),
            self.mean_output_tokens,
            self.token_rate_rps,
            self.num_requests,
        )


_PRIMED: Dict[Tuple, ServingReport] = {}


def plan(
    model: str = "BERT-B",
    config: SprintConfig = S_SPRINT,
    mean_output_lens: Sequence[float] = DEFAULT_MEAN_OUTPUT_LENS,
    modes: Sequence[ExecutionMode] = DEFAULT_MODES,
    token_rate_rps: float = DEFAULT_TOKEN_RATE_RPS,
    requests_per_point: int = DEFAULT_REQUESTS_PER_POINT,
    seed: int = 0,
    num_devices: int = 1,
    max_batch_size: int = 8,
    max_wait_ms: float = 2.0,
    len_bucket: int = 32,
    engine: str = "fast",
) -> List[DecodeUnit]:
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    experiment = DecodeExperiment(
        model=model, config=config, num_devices=num_devices,
        max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
        len_bucket=len_bucket, seed=seed, engine=engine,
    )
    return [
        experiment._unit(mode, mean_out, token_rate_rps, requests_per_point)
        for mode in modes
        for mean_out in mean_output_lens
    ]


def prime(key: Tuple, report: ServingReport) -> None:
    """Install an externally computed point (parallel-runtime hook)."""
    _PRIMED[tuple(key)] = report


def clear_primed() -> None:
    _PRIMED.clear()


# ----------------------------------------------------------------------
# runner-compatible module-level API
# ----------------------------------------------------------------------
def run(
    model: str = "BERT-B",
    config: SprintConfig = S_SPRINT,
    mean_output_lens: Sequence[float] = DEFAULT_MEAN_OUTPUT_LENS,
    modes: Sequence[ExecutionMode] = DEFAULT_MODES,
    token_rate_rps: float = DEFAULT_TOKEN_RATE_RPS,
    requests_per_point: int = DEFAULT_REQUESTS_PER_POINT,
    seed: int = 0,
    **experiment_kwargs,
) -> List[DecodeRow]:
    experiment = DecodeExperiment(
        model=model, config=config, seed=seed, **experiment_kwargs
    )
    return experiment.run(
        mean_output_lens=mean_output_lens,
        modes=modes,
        token_rate_rps=token_rate_rps,
        requests_per_point=requests_per_point,
    )


def format_table(rows: Sequence[DecodeRow]) -> str:
    lines = [
        "Decode study: SPRINT pruning vs autoregressive growth "
        "(iso token load)",
        f"{'mode':<13} {'out':>5} {'req/s':>7} {'tok/s':>8} {'util':>6} "
        f"{'TTFT p50':>9} {'TTFT p99':>9} {'TBT p50':>8} {'TBT p99':>8} "
        f"{'uJ/tok':>9} {'batch':>6}",
    ]
    for r in rows:
        lines.append(
            f"{r.mode:<13} {r.mean_output_tokens:>5.0f} "
            f"{r.offered_rps:>7.1f} {r.tokens_per_s:>8.1f} "
            f"{r.utilization:>6.1%} {r.ttft_p50_ms:>9.2f} "
            f"{r.ttft_p99_ms:>9.2f} {r.tbt_p50_ms:>8.3f} "
            f"{r.tbt_p99_ms:>8.3f} {r.energy_uj_per_token:>9.1f} "
            f"{r.mean_step_batch:>6.2f}"
        )
    # Headline: SPRINT's advantage per decode-growth point.
    by_point: Dict[float, Dict[str, DecodeRow]] = {}
    for r in rows:
        by_point.setdefault(r.mean_output_tokens, {})[r.mode] = r
    for mean_out in sorted(by_point):
        base = by_point[mean_out].get(ExecutionMode.BASELINE.value)
        sprint = by_point[mean_out].get(ExecutionMode.SPRINT.value)
        if base is None or sprint is None:
            continue
        tok_ratio = (
            sprint.tokens_per_s / base.tokens_per_s
            if base.tokens_per_s > 0
            else float("inf")
        )
        tbt_ratio = (
            base.tbt_p50_ms / sprint.tbt_p50_ms
            if sprint.tbt_p50_ms > 0
            else float("inf")
        )
        lines.append(
            f"sprint vs baseline @ {mean_out:.0f} out-tokens: "
            f"{tok_ratio:.2f}x tokens/s, {tbt_ratio:.2f}x faster TBT p50, "
            f"{base.energy_uj_per_token / sprint.energy_uj_per_token:.2f}x "
            f"energy/token"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
