"""End-to-end (attention + FFN) speedup/energy, section VII's last study.

SPRINT repurposes the QK-PU/V-PU as dot-product engines for the
feed-forward network, with the K/V buffers caching FFN weights.  Its
end-to-end benefit on the FFN side comes from the two-dimensional
sequence reduction alone (padded tokens skip the FFN entirely), so
models without padding (ViT) see ~1x while Synth-2 (50% padding, huge
sequence) reaches several-fold.  Paper: BERT-B 2.2x energy / 1.8x speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.configs import M_SPRINT, SprintConfig
from repro.core.system import ExecutionMode
from repro.energy.constants import TABLE_II
from repro.experiments import sweep
from repro.experiments.sweep import grid
from repro.models.zoo import get_model

DEFAULT_MODELS = ("BERT-B", "BERT-L", "ViT-B", "Synth-2")


@dataclass(frozen=True)
class FfnRow:
    model: str
    config: str
    end_to_end_speedup: float
    end_to_end_energy_saving: float
    attention_speedup: float
    ffn_speedup: float


def _ffn_cycles(tokens: int, embed_dim: int, config: SprintConfig) -> float:
    """Cycles to push ``tokens`` through the two FFN matmuls.

    FFN is e -> 4e -> e; each token costs ``2 * e * 4e`` MACs, executed
    on ``2 * num_corelets`` 64-tap engines (QK-PU + V-PU repurposed).
    """
    macs = tokens * 2.0 * embed_dim * 4 * embed_dim
    engines = 2 * config.num_corelets
    return macs / (config.mac_taps * engines)


def _ffn_energy_pj(tokens: int, embed_dim: int) -> float:
    """FFN energy: dot-product engines plus weight-buffer traffic."""
    macs = tokens * 2.0 * embed_dim * 4 * embed_dim
    dot_ops = macs / 64.0
    # Weights stream through the K/V buffers (16 KB working set reused
    # across tokens); charge one buffer access per 64-element tile.
    buffer_pj = dot_ops * TABLE_II.kv_buffer_vector_pj(64) / 4.0
    return dot_ops * TABLE_II.dot_product_64tap_pj + buffer_pj


MODES = (ExecutionMode.BASELINE, ExecutionMode.SPRINT)


def plan(
    models: Sequence[str] = DEFAULT_MODELS,
    config: SprintConfig = M_SPRINT,
    num_samples: int = 2,
    seed: int = 1,
):
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    return sweep.plan_units(models, (config,), MODES, num_samples, seed)


#: Runtime hooks: unit results shipped back by the pool land in the
#: shared sweep memo that :func:`run` reads through.
prime = sweep.prime
clear_primed = sweep.clear_primed


def run(
    models: Sequence[str] = DEFAULT_MODELS,
    config: SprintConfig = M_SPRINT,
    num_samples: int = 2,
    seed: int = 1,
) -> List[FfnRow]:
    reports = grid(models, (config,), MODES, num_samples, seed)
    rows: List[FfnRow] = []
    for model in models:
        spec = get_model(model)
        base = reports[(model, config.name, ExecutionMode.BASELINE.value)]
        sprint = reports[(model, config.name, ExecutionMode.SPRINT.value)]
        heads = spec.num_heads
        attn_base_cycles = base.cycles * heads
        attn_sprint_cycles = sprint.cycles * heads
        attn_base_pj = base.total_energy_pj * heads
        attn_sprint_pj = sprint.total_energy_pj * heads
        # FFN: baseline runs every token, SPRINT only the valid ones.
        ffn_base_cycles = _ffn_cycles(spec.seq_len, spec.embed_dim, config)
        ffn_sprint_cycles = _ffn_cycles(spec.valid_len, spec.embed_dim, config)
        ffn_base_pj = _ffn_energy_pj(spec.seq_len, spec.embed_dim)
        ffn_sprint_pj = _ffn_energy_pj(spec.valid_len, spec.embed_dim)
        rows.append(
            FfnRow(
                model=model,
                config=config.name,
                end_to_end_speedup=(attn_base_cycles + ffn_base_cycles)
                / (attn_sprint_cycles + ffn_sprint_cycles),
                end_to_end_energy_saving=(attn_base_pj + ffn_base_pj)
                / (attn_sprint_pj + ffn_sprint_pj),
                attention_speedup=attn_base_cycles / attn_sprint_cycles,
                ffn_speedup=ffn_base_cycles / ffn_sprint_cycles,
            )
        )
    return rows


def format_table(rows: List[FfnRow]) -> str:
    lines = [
        "End-to-end (attention + FFN) benefit of M-SPRINT",
        f"{'model':<10} {'energy saving':>14} {'speedup':>9} "
        f"{'attn-only':>10} {'ffn-only':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.model:<10} {r.end_to_end_energy_saving:>13.2f}x "
            f"{r.end_to_end_speedup:>8.2f}x {r.attention_speedup:>9.2f}x "
            f"{r.ffn_speedup:>8.2f}x"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
