"""Sensitivity sweeps: how SPRINT's benefit scales with the inputs.

Two studies that extend the paper's evaluation along its own axes:

1. **Pruning-rate sweep** -- the learned thresholds achieve 64-76%
   across the paper's models; how do speedup/energy scale if a model
   prunes more or less aggressively?  (This is the knob the threshold
   margin of section III-A trades away.)
2. **Sequence-length sweep** -- the paper projects "futuristic" 2K/4K
   sequences with two synthetic models; this sweep traces the whole
   curve from 128 to 4096 at fixed hardware, showing where the benefit
   saturates and why (capacity coverage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.configs import S_SPRINT, SprintConfig
from repro.core.system import ExecutionMode, SprintSystem
from repro.workloads.generator import generate_workload


@dataclass(frozen=True)
class PruningRateRow:
    pruning_rate: float
    speedup: float
    energy_reduction: float
    unpruned_per_query: float


def run_pruning_rate_sweep(
    rates: Sequence[float] = (0.3, 0.5, 0.65, 0.75, 0.85, 0.95),
    seq_len: int = 384,
    padding_ratio: float = 0.0,
    config: SprintConfig = S_SPRINT,
    seed: int = 1,
) -> List[PruningRateRow]:
    """SPRINT benefit as a function of achieved pruning rate."""
    system = SprintSystem(config)
    rows: List[PruningRateRow] = []
    for rate in rates:
        workload = generate_workload(
            seq_len, rate, padding_ratio=padding_ratio,
            num_samples=1, seed=seed,
        )
        reports = system.simulate_modes(
            workload, (ExecutionMode.BASELINE, ExecutionMode.SPRINT), "sweep"
        )
        base = reports[ExecutionMode.BASELINE.value]
        sprint = reports[ExecutionMode.SPRINT.value]
        rows.append(
            PruningRateRow(
                pruning_rate=rate,
                speedup=sprint.speedup_vs(base),
                energy_reduction=sprint.energy_reduction_vs(base),
                unpruned_per_query=sprint.counts["unpruned_total"]
                / max(sprint.counts["queries"], 1),
            )
        )
    return rows


@dataclass(frozen=True)
class SequenceLengthRow:
    seq_len: int
    coverage: float  # on-chip capacity / sequence length
    speedup: float
    energy_reduction: float
    data_movement_reduction: float


def run_sequence_length_sweep(
    seq_lens: Sequence[int] = (128, 256, 512, 1024, 2048, 4096),
    pruning_rate: float = 0.75,
    config: SprintConfig = S_SPRINT,
    seed: int = 1,
) -> List[SequenceLengthRow]:
    """SPRINT benefit vs sequence length at fixed hardware."""
    system = SprintSystem(config)
    rows: List[SequenceLengthRow] = []
    for s in seq_lens:
        workload = generate_workload(
            s, pruning_rate, padding_ratio=0.0, num_samples=1, seed=seed
        )
        reports = system.simulate_modes(
            workload, (ExecutionMode.BASELINE, ExecutionMode.SPRINT), "sweep"
        )
        base = reports[ExecutionMode.BASELINE.value]
        sprint = reports[ExecutionMode.SPRINT.value]
        rows.append(
            SequenceLengthRow(
                seq_len=s,
                coverage=min(1.0, config.kv_capacity_vectors / s),
                speedup=sprint.speedup_vs(base),
                energy_reduction=sprint.energy_reduction_vs(base),
                data_movement_reduction=sprint.data_movement_reduction_vs(
                    base
                ),
            )
        )
    return rows


def format_tables(
    rate_rows: List[PruningRateRow],
    length_rows: List[SequenceLengthRow],
) -> str:
    lines = [
        "Sensitivity sweeps",
        "",
        "1. Pruning-rate sweep (S-SPRINT, s=384):",
        f"   {'rate':>5} {'speedup':>8} {'energy':>8} {'unpruned/q':>11}",
    ]
    for r in rate_rows:
        lines.append(
            f"   {r.pruning_rate:>5.0%} {r.speedup:>7.2f}x "
            f"{r.energy_reduction:>7.2f}x {r.unpruned_per_query:>11.1f}"
        )
    lines.append("2. Sequence-length sweep (S-SPRINT, 75% pruning):")
    lines.append(
        f"   {'s':>5} {'coverage':>9} {'speedup':>8} {'energy':>8} "
        f"{'traffic cut':>12}"
    )
    for r in length_rows:
        lines.append(
            f"   {r.seq_len:>5d} {r.coverage:>8.1%} {r.speedup:>7.2f}x "
            f"{r.energy_reduction:>7.2f}x {r.data_movement_reduction:>11.1%}"
        )
    return "\n".join(lines)


def run():
    return run_pruning_rate_sweep(), run_sequence_length_sweep()


def format_table(rows) -> str:
    return format_tables(*rows)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
