"""Sensitivity sweeps: how SPRINT's benefit scales with the inputs.

Two studies that extend the paper's evaluation along its own axes:

1. **Pruning-rate sweep** -- the learned thresholds achieve 64-76%
   across the paper's models; how do speedup/energy scale if a model
   prunes more or less aggressively?  (This is the knob the threshold
   margin of section III-A trades away.)
2. **Sequence-length sweep** -- the paper projects "futuristic" 2K/4K
   sequences with two synthetic models; this sweep traces the whole
   curve from 128 to 4096 at fixed hardware, showing where the benefit
   saturates and why (capacity coverage).

Both sweeps are shardable: every row is an independent
:class:`SensitivityUnit` on the runtime's WorkUnit protocol
(``plan``/``prime``/``clear_primed``), so ``sprint-experiments
sensitivity --jobs N`` spreads rows across workers and the unit cache
replays unchanged rows when a rate/length list is edited.  Units group
by sweep kind so a worker shard reuses one process-level
:class:`~repro.core.system.SprintSystem`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.configs import S_SPRINT, SprintConfig
from repro.core.system import ExecutionMode, SprintSystem
from repro.workloads.generator import generate_workload

DEFAULT_RATES = (0.3, 0.5, 0.65, 0.75, 0.85, 0.95)
DEFAULT_SEQ_LENS = (128, 256, 512, 1024, 2048, 4096)
#: Fixed axes of each sweep.  Shared by the sweep functions' defaults
#: and :func:`plan`'s unit parameters -- they must agree, or primed
#: lookups silently miss and sharded rows recompute in-parent.
RATE_SWEEP_SEQ_LEN = 384
RATE_SWEEP_PADDING = 0.0
LENGTH_SWEEP_PRUNING = 0.75


@lru_cache(maxsize=8)
def _shared_system(config: SprintConfig) -> SprintSystem:
    """One simulator per config, shared by every row a process runs
    (sweep rows are pure under their parameters, so sharing is sound;
    a worker shard only ever touches one entry)."""
    return SprintSystem(config)


@dataclass(frozen=True)
class PruningRateRow:
    pruning_rate: float
    speedup: float
    energy_reduction: float
    unpruned_per_query: float


def _pruning_rate_row(
    rate: float,
    seq_len: int,
    padding_ratio: float,
    config: SprintConfig,
    seed: int,
) -> PruningRateRow:
    """One independently computable point of the pruning-rate sweep."""
    system = _shared_system(config)
    workload = generate_workload(
        seq_len, rate, padding_ratio=padding_ratio,
        num_samples=1, seed=seed,
    )
    reports = system.simulate_modes(
        workload, (ExecutionMode.BASELINE, ExecutionMode.SPRINT), "sweep"
    )
    base = reports[ExecutionMode.BASELINE.value]
    sprint = reports[ExecutionMode.SPRINT.value]
    return PruningRateRow(
        pruning_rate=rate,
        speedup=sprint.speedup_vs(base),
        energy_reduction=sprint.energy_reduction_vs(base),
        unpruned_per_query=sprint.counts["unpruned_total"]
        / max(sprint.counts["queries"], 1),
    )


def run_pruning_rate_sweep(
    rates: Sequence[float] = DEFAULT_RATES,
    seq_len: int = RATE_SWEEP_SEQ_LEN,
    padding_ratio: float = RATE_SWEEP_PADDING,
    config: SprintConfig = S_SPRINT,
    seed: int = 1,
) -> List[PruningRateRow]:
    """SPRINT benefit as a function of achieved pruning rate."""
    rows: List[PruningRateRow] = []
    for rate in rates:
        key = _unit_key("pruning_rate", rate, seq_len, padding_ratio, config, seed)
        row = _PRIMED.get(key)
        if row is None:
            row = _pruning_rate_row(rate, seq_len, padding_ratio, config, seed)
        rows.append(row)
    return rows


@dataclass(frozen=True)
class SequenceLengthRow:
    seq_len: int
    coverage: float  # on-chip capacity / sequence length
    speedup: float
    energy_reduction: float
    data_movement_reduction: float


def _sequence_length_row(
    seq_len: int,
    pruning_rate: float,
    config: SprintConfig,
    seed: int,
) -> SequenceLengthRow:
    """One independently computable point of the length sweep."""
    system = _shared_system(config)
    workload = generate_workload(
        seq_len, pruning_rate, padding_ratio=0.0, num_samples=1, seed=seed
    )
    reports = system.simulate_modes(
        workload, (ExecutionMode.BASELINE, ExecutionMode.SPRINT), "sweep"
    )
    base = reports[ExecutionMode.BASELINE.value]
    sprint = reports[ExecutionMode.SPRINT.value]
    return SequenceLengthRow(
        seq_len=seq_len,
        coverage=min(1.0, config.kv_capacity_vectors / seq_len),
        speedup=sprint.speedup_vs(base),
        energy_reduction=sprint.energy_reduction_vs(base),
        data_movement_reduction=sprint.data_movement_reduction_vs(base),
    )


def run_sequence_length_sweep(
    seq_lens: Sequence[int] = DEFAULT_SEQ_LENS,
    pruning_rate: float = LENGTH_SWEEP_PRUNING,
    config: SprintConfig = S_SPRINT,
    seed: int = 1,
) -> List[SequenceLengthRow]:
    """SPRINT benefit vs sequence length at fixed hardware."""
    rows: List[SequenceLengthRow] = []
    for s in seq_lens:
        key = _unit_key("seq_len", s, pruning_rate, 0.0, config, seed)
        row = _PRIMED.get(key)
        if row is None:
            row = _sequence_length_row(s, pruning_rate, config, seed)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# WorkUnit protocol (plan / prime / clear_primed)
# ----------------------------------------------------------------------
SweepRow = Union[PruningRateRow, SequenceLengthRow]


def _unit_key(
    kind: str,
    value: Union[int, float],
    fixed: Union[int, float],
    padding_ratio: float,
    config: SprintConfig,
    seed: int,
) -> Tuple:
    """Content key of one sweep row (full parameters incl. config)."""
    return (
        "sensitivity",
        kind,
        value,
        fixed,
        padding_ratio,
        dataclasses.astuple(config),
        seed,
    )


@dataclass(frozen=True)
class SensitivityUnit:
    """One sensitivity row as a runtime WorkUnit.

    ``kind`` selects the sweep ("pruning_rate" | "seq_len"); ``value``
    is its swept parameter and ``fixed`` the other axis held constant
    (the rate sweep's seq_len, the length sweep's pruning rate).  Units
    group by kind so a worker shard warms one shared SprintSystem.
    """

    kind: str
    value: Union[int, float]
    fixed: Union[int, float]
    padding_ratio: float
    config: SprintConfig
    seed: int

    @property
    def key(self) -> Tuple:
        return _unit_key(
            self.kind, self.value, self.fixed, self.padding_ratio,
            self.config, self.seed,
        )

    @property
    def group(self) -> Tuple[str, str, str]:
        return ("sensitivity", self.config.name, self.kind)

    def execute(self) -> SweepRow:
        if self.kind == "pruning_rate":
            return _pruning_rate_row(
                self.value, self.fixed, self.padding_ratio,
                self.config, self.seed,
            )
        return _sequence_length_row(
            self.value, self.fixed, self.config, self.seed
        )


#: Rows installed by :func:`prime` (computed in a worker process or
#: replayed from the unit cache); consulted by the sweeps before
#: simulating a row locally.
_PRIMED: Dict[Tuple, SweepRow] = {}


def plan(
    rates: Sequence[float] = DEFAULT_RATES,
    seq_lens: Sequence[int] = DEFAULT_SEQ_LENS,
    config: SprintConfig = S_SPRINT,
    seed: int = 1,
) -> List[SensitivityUnit]:
    """Work units a same-argument :func:`run` consumes (for sharding)."""
    units = [
        SensitivityUnit(
            kind="pruning_rate", value=rate, fixed=RATE_SWEEP_SEQ_LEN,
            padding_ratio=RATE_SWEEP_PADDING, config=config, seed=seed,
        )
        for rate in rates
    ]
    units.extend(
        SensitivityUnit(
            kind="seq_len", value=s, fixed=LENGTH_SWEEP_PRUNING,
            padding_ratio=0.0, config=config, seed=seed,
        )
        for s in seq_lens
    )
    return units


def prime(key: Tuple, row: SweepRow) -> None:
    """Install an externally computed row (parallel-runtime hook)."""
    _PRIMED[tuple(key)] = row


def clear_primed() -> None:
    _PRIMED.clear()


def format_tables(
    rate_rows: List[PruningRateRow],
    length_rows: List[SequenceLengthRow],
) -> str:
    lines = [
        "Sensitivity sweeps",
        "",
        "1. Pruning-rate sweep (S-SPRINT, s=384):",
        f"   {'rate':>5} {'speedup':>8} {'energy':>8} {'unpruned/q':>11}",
    ]
    for r in rate_rows:
        lines.append(
            f"   {r.pruning_rate:>5.0%} {r.speedup:>7.2f}x "
            f"{r.energy_reduction:>7.2f}x {r.unpruned_per_query:>11.1f}"
        )
    lines.append("2. Sequence-length sweep (S-SPRINT, 75% pruning):")
    lines.append(
        f"   {'s':>5} {'coverage':>9} {'speedup':>8} {'energy':>8} "
        f"{'traffic cut':>12}"
    )
    for r in length_rows:
        lines.append(
            f"   {r.seq_len:>5d} {r.coverage:>8.1%} {r.speedup:>7.2f}x "
            f"{r.energy_reduction:>7.2f}x {r.data_movement_reduction:>11.1%}"
        )
    return "\n".join(lines)


def run(
    rates: Sequence[float] = DEFAULT_RATES,
    seq_lens: Sequence[int] = DEFAULT_SEQ_LENS,
    config: SprintConfig = S_SPRINT,
    seed: int = 1,
):
    return (
        run_pruning_rate_sweep(rates=rates, config=config, seed=seed),
        run_sequence_length_sweep(seq_lens=seq_lens, config=config, seed=seed),
    )


def format_table(rows) -> str:
    return format_tables(*rows)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
