"""Run every experiment and print paper-style tables.

``sprint-experiments`` (console script) or ``python -m
repro.experiments.runner`` runs the full set; pass experiment names
(e.g. ``fig11 table3``) to run a subset, ``--fast`` for smaller sample
counts.  The CLI fronts :mod:`repro.runtime`:

* ``--jobs N`` shards independent experiments (and, inside the heavy
  sweeps, independent model cells) across ``N`` worker processes;
* ``--cache-dir DIR`` replays unchanged experiments from the
  content-addressed result cache instead of re-simulating;
* ``--json-out DIR`` writes each experiment's structured artifact to
  ``DIR/<name>.json`` alongside the printed table (which is itself a
  rendering of the artifact);
* ``--list`` prints the registered experiments (one line each, with a
  marker on the ones that shard via the WorkUnit protocol) and exits;
* ``--metrics-out FILE`` writes the schema-versioned run-manifest JSON
  (:mod:`repro.obs.telemetry`): cache/unit counters, structured
  events, per-experiment outcomes and wall times;
* ``--trace-out DIR`` enables sim-time request tracing in the serving
  experiments: one Chrome-trace JSON (Perfetto-viewable) per simulated
  point, sampled by ``--trace-head`` / ``--trace-stride``.

Exit status is 0 only when every requested experiment succeeded;
failures are reported per experiment and turn into exit code 1
instead of aborting the batch mid-run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.registry import (
    EXPERIMENTS,  # noqa: F401 - re-exported (tests and back-compat)
    ExperimentModule,  # noqa: F401 - re-exported (tests and back-compat)
    describe,
    resolve,
)
from repro.obs.telemetry import RunTelemetry, set_telemetry
from repro.runtime import Artifact, ExperimentPool, ResultCache, supports_units


def run_structured(name: str, fast: bool = False) -> Artifact:
    """Run one experiment by short name and return its artifact."""
    from repro.runtime.artifacts import build_artifact

    kwargs, module = resolve(name, fast)
    return build_artifact(name, kwargs, module)


def run_experiment(name: str, fast: bool = False) -> str:
    """Run one experiment by short name and return its formatted table."""
    return run_structured(name, fast=fast).table


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the SPRINT paper's figures and tables."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help="subset to run (default: all): " + ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smaller sample counts for a quick pass",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to shard experiments across (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed result cache; unchanged experiments "
        "replay instantly",
    )
    parser.add_argument(
        "--json-out",
        metavar="DIR",
        default=None,
        help="write each experiment's JSON artifact to DIR/<name>.json",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list registered experiments with descriptions and exit",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the schema-versioned run-manifest JSON (cache/unit "
        "counters, structured events, per-experiment timings) to FILE",
    )
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="enable sim-time request tracing; one Chrome-trace JSON "
        "(open in Perfetto) per simulated serving point lands in DIR",
    )
    parser.add_argument(
        "--trace-head",
        type=int,
        default=512,
        metavar="N",
        help="trace every request with id < N (default: 512)",
    )
    parser.add_argument(
        "--trace-stride",
        type=int,
        default=0,
        metavar="N",
        help="additionally trace every N-th request id (default: off)",
    )
    args = parser.parse_args(argv)
    if args.list_experiments:
        for name, (_fast_kwargs, module) in EXPERIMENTS.items():
            marker = "*" if supports_units(module) else " "
            print(f"{name:<12} {marker} {describe(name)}")
        print("(* = shardable: declares WorkUnits, scales with --jobs)")
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.trace_head < 0 or args.trace_stride < 0:
        parser.error("--trace-head/--trace-stride must be non-negative")
    unknown = [n for n in args.experiments if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; choose from "
            f"{', '.join(EXPERIMENTS)}"
        )

    # Observability is opt-in: the telemetry instance only exists (and
    # the hooks throughout the runtime only record) when a flag asks
    # for it.  Install before the pool runs so forked workers inherit
    # the trace configuration.
    telemetry = None
    if args.metrics_out or args.trace_out:
        telemetry = RunTelemetry(
            jobs=args.jobs,
            fast=args.fast,
            trace_dir=args.trace_out,
            trace_head=args.trace_head,
            trace_stride=args.trace_stride,
        )
        set_telemetry(telemetry)
        if args.trace_out:
            Path(args.trace_out).mkdir(parents=True, exist_ok=True)

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    pool = ExperimentPool(jobs=args.jobs, cache=cache)
    try:
        outcomes = pool.run(args.experiments, fast=args.fast)
    finally:
        set_telemetry(None)

    failures = []
    for name, outcome in outcomes.items():
        print("=" * 72)
        if not outcome.ok:
            failures.append(name)
            print(f"[{name} FAILED: {outcome.error}]")
        else:
            print(outcome.artifact.table)
            source = "cache" if outcome.cached else f"{outcome.seconds:.1f}s"
            print(f"[{name} done ({source})]")
            if args.json_out:
                outcome.artifact.write(args.json_out)
        if telemetry is not None:
            telemetry.record_experiment(
                name,
                seconds=outcome.seconds,
                cached=outcome.cached,
                error=outcome.error,
            )
        sys.stdout.flush()
    if telemetry is not None and args.metrics_out:
        print(f"[run manifest -> {telemetry.write(args.metrics_out)}]")
    if failures:
        print(
            f"{len(failures)}/{len(outcomes)} experiment(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
