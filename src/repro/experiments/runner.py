"""Run every experiment and print paper-style tables.

``sprint-experiments`` (console script) or ``python -m
repro.experiments.runner`` runs the full set; pass experiment names
(e.g. ``fig11 table3``) to run a subset, ``--fast`` for smaller sample
counts.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments import (
    ablations,
    ffn_end_to_end,
    fig1_memory_energy,
    fig2_heatmap,
    fig3_overlap,
    fig5_bit_sensitivity,
    fig8_imbalance,
    fig9_accuracy,
    fig10_data_movement,
    fig11_speedup,
    fig12_energy,
    fig13_breakdown,
    sensitivity,
    serving,
    table3_comparison,
)

#: name -> (run kwargs for fast mode, module)
EXPERIMENTS: Dict[str, Tuple[dict, object]] = {
    "fig1": ({"seq_lengths": (32, 128, 512)}, fig1_memory_energy),
    "fig2": ({}, fig2_heatmap),
    "fig3": ({"num_samples": 1}, fig3_overlap),
    "fig5": ({"num_samples": 16}, fig5_bit_sensitivity),
    "fig8": ({"num_samples": 1}, fig8_imbalance),
    "fig9": ({"num_samples": 16}, fig9_accuracy),
    "fig10": ({"num_samples": 1}, fig10_data_movement),
    "fig11": ({"num_samples": 1}, fig11_speedup),
    "fig12": ({"num_samples": 1}, fig12_energy),
    "fig13": ({"num_samples": 1}, fig13_breakdown),
    "ffn": ({"num_samples": 1}, ffn_end_to_end),
    "table3": ({"num_samples": 1}, table3_comparison),
    "ablations": ({}, ablations),
    "sensitivity": ({}, sensitivity),
    "serving": (
        {"num_requests": 100, "loads": (20.0, 80.0)}, serving
    ),
}


def run_experiment(name: str, fast: bool = False) -> str:
    """Run one experiment by short name and return its formatted table."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(EXPERIMENTS)}"
        )
    fast_kwargs, module = EXPERIMENTS[name]
    kwargs = fast_kwargs if fast else {}
    rows = module.run(**kwargs)
    return module.format_table(rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the SPRINT paper's figures and tables."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help="subset to run (default: all): " + ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="smaller sample counts for a quick pass",
    )
    args = parser.parse_args(argv)
    for name in args.experiments:
        start = time.time()
        print("=" * 72)
        print(run_experiment(name, fast=args.fast))
        print(f"[{name} done in {time.time() - start:.1f}s]")
        sys.stdout.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
