"""Data layout organization (paper section V-A).

Key (and value) vectors are stored *non-interleaved* -- each vector in
one memory-mat column -- and **neighbouring vectors are distributed
across different channels/banks**, because spatial locality makes
adjacent unpruned indices likely to be fetched together; spreading them
across channels turns that into bandwidth instead of bank conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhysicalAddress:
    """Where one embedding vector lives."""

    channel: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class KVLayout:
    """Channel-interleaved placement of key/value vectors.

    Token ``i`` maps to channel ``i mod num_channels``; within a channel,
    consecutive resident tokens round-robin across banks and fill rows of
    ``columns_per_row`` vectors (one vector per mat column).
    """

    num_channels: int = 16
    banks_per_channel: int = 8
    columns_per_row: int = 128
    vector_bytes: int = 64  # d=64 one-byte elements

    def address_of(self, token_index: int) -> PhysicalAddress:
        if token_index < 0:
            raise ValueError("token_index must be non-negative")
        channel = token_index % self.num_channels
        within = token_index // self.num_channels
        bank = within % self.banks_per_channel
        slot = within // self.banks_per_channel
        row = slot // self.columns_per_row
        column = slot % self.columns_per_row
        return PhysicalAddress(channel=channel, bank=bank, row=row, column=column)

    def tokens_per_channel(self, seq_len: int, channel: int) -> int:
        """How many of ``seq_len`` tokens land on ``channel``."""
        if channel >= self.num_channels:
            return 0
        full, rem = divmod(seq_len, self.num_channels)
        return full + (1 if channel < rem else 0)
