"""Memory command set, including SPRINT's CopyQ and ReadP (section V-C).

``CopyQ`` copies query-vector elements into the in-memory query buffer
(a one-bit flag marks the start of in-memory thresholding); ``ReadP``
reads the resulting binary pruning vector back through the bank row
buffers.  Both obey read/write-like timing, except CopyQ skips tRP/tRCD
because it targets an isolated buffer rather than a memory row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandKind(enum.Enum):
    """Every command the SPRINT controller can issue."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    COPY_Q = "CopyQ"
    READ_P = "ReadP"

    def touches_row(self) -> bool:
        """Whether the command interacts with a DRAM/ReRAM row."""
        return self in (
            CommandKind.ACTIVATE,
            CommandKind.PRECHARGE,
            CommandKind.READ,
            CommandKind.WRITE,
            CommandKind.READ_P,
        )


@dataclass(frozen=True)
class MemoryRequest:
    """A request from the accelerator, pre-address-translation.

    ``token_index`` identifies the key/value vector; ``is_write`` is used
    when initially laying out embeddings.  ``kind_hint`` distinguishes
    normal data movement from thresholding control traffic.
    """

    token_index: int
    is_write: bool = False
    kind_hint: Optional[CommandKind] = None
    query_index: int = 0


@dataclass
class MemoryCommand:
    """A scheduled command bound to a physical location."""

    kind: CommandKind
    channel: int
    bank: int
    row: int = 0
    column: int = 0
    issue_cycle: int = 0
    #: Set by CopyQ to trigger in-memory thresholding (section V-C).
    start_compute: bool = False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.kind.value}@c{self.channel}b{self.bank}"
            f"r{self.row}col{self.column}+{self.issue_cycle}"
        )
