"""Bank / channel state machines with row-buffer tracking.

The scheduler consults these models to decide whether a column access
enjoys row-buffer locality (open-row hit) or must pay the
PRECHARGE + ACTIVATE penalty (section V, Background).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.memory.commands import CommandKind
from repro.memory.timing import TimingParameters


@dataclass
class Bank:
    """One memory bank with a single open-row buffer."""

    index: int
    open_row: Optional[int] = None
    ready_cycle: int = 0
    row_hits: int = 0
    row_misses: int = 0

    def access(
        self, row: int, cycle: int, timing: TimingParameters
    ) -> int:
        """Perform a column access to ``row``; returns completion cycle.

        Issues the implicit PRE/ACT pair on a row-buffer miss.
        """
        start = max(cycle, self.ready_cycle)
        if self.open_row == row:
            self.row_hits += 1
        else:
            self.row_misses += 1
            if self.open_row is not None:
                start += timing.command_latency(CommandKind.PRECHARGE)
            start += timing.command_latency(CommandKind.ACTIVATE)
            self.open_row = row
        done = start + timing.command_latency(CommandKind.READ)
        self.ready_cycle = done
        return done


@dataclass
class Channel:
    """A channel: shared data bus plus its banks."""

    index: int
    num_banks: int = 8
    banks: List[Bank] = field(default_factory=list)
    bus_free_cycle: int = 0
    activate_history: List[int] = field(default_factory=list)

    def __post_init__(self):
        if not self.banks:
            self.banks = [Bank(index=i) for i in range(self.num_banks)]

    def bank(self, index: int) -> Bank:
        return self.banks[index % self.num_banks]

    def reserve_bus(self, cycle: int, occupancy: int) -> int:
        """Serialize data-bus usage; returns the granted start cycle."""
        start = max(cycle, self.bus_free_cycle)
        self.bus_free_cycle = start + occupancy
        return start

    def note_activate(self, cycle: int, timing: TimingParameters) -> int:
        """Enforce tRRD/tFAW across this channel's activates.

        Returns the earliest cycle the activate may issue.
        """
        start = cycle
        if self.activate_history:
            start = max(start, self.activate_history[-1] + timing.t_rrd)
            if len(self.activate_history) >= 4:
                start = max(start, self.activate_history[-4] + timing.t_faw)
        self.activate_history.append(start)
        if len(self.activate_history) > 16:
            self.activate_history = self.activate_history[-8:]
        return start


@dataclass
class MemoryDevice:
    """The whole off-chip memory: channels of banks."""

    num_channels: int = 16
    banks_per_channel: int = 8
    channels: List[Channel] = field(default_factory=list)

    def __post_init__(self):
        if not self.channels:
            self.channels = [
                Channel(index=i, num_banks=self.banks_per_channel)
                for i in range(self.num_channels)
            ]

    def channel(self, index: int) -> Channel:
        return self.channels[index % self.num_channels]

    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for c in self.channels for b in c.banks)
        misses = sum(b.row_misses for c in self.channels for b in c.banks)
        total = hits + misses
        return hits / total if total else 0.0
