"""The SPRINT memory controller: frontend engines + backend scheduler.

The frontend accepts one binary pruning vector per query (produced by
the in-memory thresholding), runs the SLD engine against the on-chip
buffer residency model, generates fetch requests through the per-channel
MRGs, and hands them to the backend :class:`CommandScheduler`.  The
controller also owns the CopyQ/ReadP exchange that triggers thresholding
for the *next* query (section V-C execution flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.memory.dram import MemoryDevice
from repro.memory.layout import KVLayout
from repro.memory.mrg import generate_all_requests
from repro.memory.scheduler import CommandScheduler
from repro.memory.sld import SpatialLocalityDetector
from repro.memory.timing import TimingParameters


@dataclass
class ControllerStats:
    """Aggregate statistics over a controller's lifetime."""

    queries: int = 0
    vectors_fetched: int = 0
    vectors_reused: int = 0
    evictions: int = 0
    copyq_commands: int = 0
    readp_commands: int = 0
    total_latency_cycles: int = 0

    @property
    def reuse_fraction(self) -> float:
        total = self.vectors_fetched + self.vectors_reused
        return self.vectors_reused / total if total else 0.0


@dataclass
class QueryTraffic:
    """Per-query outcome handed back to the accelerator."""

    fetch_indices: np.ndarray
    reuse_indices: np.ndarray
    latency_cycles: int
    pruning_ready_cycle: int


class SprintMemoryController:
    """Frontend + backend for one attention head's K/V traffic.

    Parameters
    ----------
    seq_len:
        Sequence length (pruning vectors have this many bits).
    capacity_vectors:
        How many key vectors the on-chip K buffer holds (the V buffer is
        symmetric and shares indices, so one residency set suffices).
    """

    def __init__(
        self,
        seq_len: int,
        capacity_vectors: int,
        layout: Optional[KVLayout] = None,
        timing: Optional[TimingParameters] = None,
        enable_sld: bool = True,
    ):
        if capacity_vectors < 1:
            raise ValueError("capacity_vectors must be positive")
        self.seq_len = seq_len
        self.capacity = capacity_vectors
        self.layout = layout or KVLayout()
        self.timing = timing or TimingParameters()
        self.enable_sld = enable_sld
        self.device = MemoryDevice(
            num_channels=self.layout.num_channels,
            banks_per_channel=self.layout.banks_per_channel,
        )
        self.scheduler = CommandScheduler(
            device=self.device, layout=self.layout, timing=self.timing
        )
        self.sld = SpatialLocalityDetector(seq_len)
        self.stats = ControllerStats()
        self._resident = np.zeros(seq_len, dtype=bool)
        self._last_use = np.full(seq_len, -1, dtype=np.int64)
        self._clock = 0

    # ------------------------------------------------------------------
    def reset_residency(self) -> None:
        """Flush the on-chip buffers (e.g. between attention heads)."""
        self._resident[:] = False
        self._last_use[:] = -1
        self.sld.reset()

    def resident_mask(self) -> np.ndarray:
        return self._resident.copy()

    def process_query(
        self, pruning_vector: np.ndarray, query_index: int = 0
    ) -> QueryTraffic:
        """Handle one query's pruning vector end to end.

        Schedules the CopyQ/ReadP exchange, computes the fetch delta via
        SLD + residency, schedules the data reads, updates residency with
        LRU eviction, and returns the traffic summary.
        """
        pruning = np.asarray(pruning_vector, dtype=np.uint8)
        if pruning.shape != (self.seq_len,):
            raise ValueError(f"pruning vector must have length {self.seq_len}")
        # CopyQ/ReadP on every channel that holds K MSB columns; pruning
        # bits for s keys need ceil(s/64) 64-bit bursts total.
        readp_bursts = max(1, -(-self.seq_len // 64 // self.layout.num_channels))
        ready = 0
        for channel in range(self.layout.num_channels):
            ready = max(
                ready,
                self.scheduler.schedule_thresholding(
                    channel=channel,
                    bank=0,
                    start_cycle=self._clock,
                    copyq_bursts=1,
                    readp_bursts=readp_bursts,
                ),
            )
            self.stats.copyq_commands += 1
            self.stats.readp_commands += readp_bursts
        if self.enable_sld:
            out = self.sld.step(pruning, resident=self._resident)
            request_vector = out.memory_request_vector
            reuse_vector = out.spatial_locality_vector
        else:
            # Without SLD every unpruned key is re-fetched each query.
            request_vector = (pruning == 0).astype(np.uint8)
            reuse_vector = np.zeros_like(request_vector)
        requests = generate_all_requests(
            self.layout, request_vector, query_index
        )
        done = self.scheduler.schedule_requests(requests, start_cycle=ready)
        fetch_indices = np.array([r.token_index for r in requests], dtype=np.int64)
        reuse_indices = np.nonzero(reuse_vector)[0]
        self._update_residency(fetch_indices, reuse_indices)
        latency = done - self._clock
        self._clock = done
        self.stats.queries += 1
        self.stats.vectors_fetched += len(fetch_indices)
        self.stats.vectors_reused += len(reuse_indices)
        self.stats.total_latency_cycles += max(latency, 0)
        return QueryTraffic(
            fetch_indices=fetch_indices,
            reuse_indices=reuse_indices,
            latency_cycles=max(latency, 0),
            pruning_ready_cycle=ready,
        )

    # ------------------------------------------------------------------
    def _update_residency(
        self, fetched: np.ndarray, reused: np.ndarray
    ) -> None:
        tick = self.stats.queries + 1
        self._last_use[reused] = tick
        for token in fetched:
            if self._resident.sum() >= self.capacity:
                self._evict_one(tick)
            self._resident[token] = True
            self._last_use[token] = tick

    def _evict_one(self, tick: int) -> None:
        resident_idx = np.nonzero(self._resident)[0]
        if resident_idx.size == 0:
            return
        victim = resident_idx[np.argmin(self._last_use[resident_idx])]
        self._resident[victim] = False
        self.stats.evictions += 1
