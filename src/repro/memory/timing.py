"""Memory timing constraints, including the new tAxTh (section V-C).

Values are in memory-controller cycles at 1 GHz (Table I: 16 x 64-bit
channels @ 1 GHz per CORELET).  Base DRAM-like constraints follow
conventional DDR-class parts; ReRAM read/write latency multipliers apply
the paper's conservative derating versus NVSim (1.6x read delay).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.commands import CommandKind


@dataclass(frozen=True)
class TimingParameters:
    """Cycle-granular timing table used by the command scheduler.

    Attributes mirror standard JEDEC names; ``t_axth`` is SPRINT's new
    constraint -- the cycles a ReRAM crossbar needs to finish in-memory
    thresholding between a ``CopyQ`` (with the start bit) and the first
    ``ReadP`` of the resulting pruning vector (<8 cycles per the paper's
    circuit simulations).
    """

    t_rcd: int = 14  # ACTIVATE -> column command
    t_rp: int = 14  # PRECHARGE -> ACTIVATE
    t_cl: int = 14  # column command -> data
    t_ras: int = 33  # ACTIVATE -> PRECHARGE
    t_burst: int = 4  # data burst occupancy
    t_rrd: int = 5  # ACTIVATE -> ACTIVATE (different banks)
    t_faw: int = 24  # four-activate window
    t_axth: int = 8  # CopyQ(start) -> ReadP
    reram_read_multiplier: float = 1.6  # conservative vs NVSim

    def command_latency(self, kind: CommandKind) -> int:
        """Cycles until the command's effect completes at the bank."""
        if kind == CommandKind.ACTIVATE:
            return int(round(self.t_rcd * self.reram_read_multiplier))
        if kind == CommandKind.PRECHARGE:
            return self.t_rp
        if kind in (CommandKind.READ, CommandKind.READ_P):
            # ReadP conservatively follows normal read timing (section V-C).
            return int(round(self.t_cl * self.reram_read_multiplier)) + self.t_burst
        if kind == CommandKind.WRITE:
            return self.t_cl + self.t_burst
        if kind == CommandKind.COPY_Q:
            # Isolated buffer: no tRP/tRCD, but the data bus is occupied,
            # so tCL applies (section V-C).
            return self.t_cl
        raise ValueError(f"unknown command kind: {kind}")

    def bus_occupancy(self, kind: CommandKind) -> int:
        """Cycles the channel data bus is busy for this command."""
        if kind in (
            CommandKind.READ,
            CommandKind.WRITE,
            CommandKind.COPY_Q,
            CommandKind.READ_P,
        ):
            return self.t_burst
        return 0


#: Default instance shared by the simulators.
DEFAULT_TIMING = TimingParameters()
