"""SPRINT memory subsystem: commands, timing, layout, controller engines.

Implements paper section V: the ReRAM main-memory command protocol with
the two new commands (``CopyQ``, ``ReadP``) and the ``tAxTh`` timing
constraint, bank/row-buffer state machines, the channel-interleaved K/V
data layout, and the controller frontend engines -- Spatial Locality
Detection (SLD), Memory Request Generator (MRG), and Key Index Generator
(KIG).
"""

from repro.memory.commands import CommandKind, MemoryCommand, MemoryRequest
from repro.memory.controller import ControllerStats, SprintMemoryController
from repro.memory.dram import Bank, Channel, MemoryDevice
from repro.memory.layout import KVLayout, PhysicalAddress
from repro.memory.mrg import KeyIndexGenerator, MemoryRequestGenerator
from repro.memory.scheduler import CommandScheduler
from repro.memory.sld import SpatialLocalityDetector, SLDOutput
from repro.memory.timing import TimingParameters
from repro.memory.frontend import ControllerFrontend, FrontendStats

__all__ = [
    "ControllerFrontend",
    "FrontendStats",
    "CommandKind",
    "MemoryCommand",
    "MemoryRequest",
    "TimingParameters",
    "Bank",
    "Channel",
    "MemoryDevice",
    "KVLayout",
    "PhysicalAddress",
    "SpatialLocalityDetector",
    "SLDOutput",
    "MemoryRequestGenerator",
    "KeyIndexGenerator",
    "CommandScheduler",
    "SprintMemoryController",
    "ControllerStats",
]
