"""Backend command scheduler honoring the timing table (section V-B/C).

A simplified FR-FCFS-style scheduler: requests are translated into
commands per the layout, row hits proceed without ACTIVATE, and the new
``CopyQ``/``ReadP`` pair enforces ``tAxTh`` between the start-compute
flag and the pruning-vector read.  Other commands are blocked on a bank
while its crossbar computes, as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.memory.commands import CommandKind, MemoryCommand, MemoryRequest
from repro.memory.dram import MemoryDevice
from repro.memory.layout import KVLayout
from repro.memory.timing import TimingParameters


@dataclass
class CommandScheduler:
    """Issues commands against the device model and tracks completion."""

    device: MemoryDevice
    layout: KVLayout
    timing: TimingParameters = field(default_factory=TimingParameters)
    issued: List[MemoryCommand] = field(default_factory=list)
    #: Per-(channel, bank) cycle until which in-memory thresholding
    #: blocks other commands.
    _compute_busy_until: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def schedule_requests(
        self, requests: List[MemoryRequest], start_cycle: int = 0
    ) -> int:
        """Schedule data reads/writes; returns the last completion cycle."""
        done = start_cycle
        for request in requests:
            addr = self.layout.address_of(request.token_index)
            kind = CommandKind.WRITE if request.is_write else CommandKind.READ
            done = max(done, self._issue_column(kind, addr, start_cycle))
        return done

    def schedule_thresholding(
        self,
        channel: int,
        bank: int,
        start_cycle: int = 0,
        copyq_bursts: int = 1,
        readp_bursts: int = 1,
    ) -> int:
        """Schedule one CopyQ(+start) ... ReadP exchange on a bank.

        Returns the cycle the pruning vector is available on chip.
        """
        chan = self.device.channel(channel)
        cycle = start_cycle
        # CopyQ bursts: isolated buffer, only bus occupancy + tCL apply.
        for i in range(copyq_bursts):
            bus_start = chan.reserve_bus(
                cycle, self.timing.bus_occupancy(CommandKind.COPY_Q)
            )
            cmd = MemoryCommand(
                kind=CommandKind.COPY_Q,
                channel=channel,
                bank=bank,
                issue_cycle=bus_start,
                start_compute=(i == copyq_bursts - 1),
            )
            self.issued.append(cmd)
            cycle = bus_start + self.timing.command_latency(CommandKind.COPY_Q)
        # tAxTh: crossbar computes; block the bank.
        compute_done = cycle + self.timing.t_axth
        self._compute_busy_until[(channel, bank)] = compute_done
        # ReadP follows full read timing through the row buffer.
        cycle = compute_done
        for _ in range(readp_bursts):
            bus_start = chan.reserve_bus(
                cycle, self.timing.bus_occupancy(CommandKind.READ_P)
            )
            self.issued.append(
                MemoryCommand(
                    kind=CommandKind.READ_P,
                    channel=channel,
                    bank=bank,
                    issue_cycle=bus_start,
                )
            )
            cycle = bus_start + self.timing.command_latency(CommandKind.READ_P)
        return cycle

    # ------------------------------------------------------------------
    def _issue_column(self, kind, addr, cycle: int) -> int:
        chan = self.device.channel(addr.channel)
        bank = chan.bank(addr.bank)
        # Respect in-flight in-memory thresholding on this bank.
        blocked = self._compute_busy_until.get((addr.channel, addr.bank), 0)
        start = max(cycle, blocked)
        if bank.open_row != addr.row:
            start = chan.note_activate(start, self.timing)
        bus_start = chan.reserve_bus(start, self.timing.bus_occupancy(kind))
        done = bank.access(addr.row, bus_start, self.timing)
        self.issued.append(
            MemoryCommand(
                kind=kind,
                channel=addr.channel,
                bank=addr.bank,
                row=addr.row,
                column=addr.column,
                issue_cycle=bus_start,
            )
        )
        return done
