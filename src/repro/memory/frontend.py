"""Controller frontend: multi-accelerator request arbitration (section V-B).

"The frontend engine communicates with multiple on-chip accelerators,
accepting memory requests" -- with several CORELETs (or several
accelerator tiles) sharing the memory system, their request streams
must be queued and arbitrated before the backend scheduler sees them.
This module provides bounded per-client queues and two arbitration
policies (round-robin and oldest-first), plus fairness statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.memory.commands import MemoryRequest


@dataclass
class FrontendStats:
    accepted: int = 0
    rejected_full: int = 0
    issued: int = 0
    per_client_issued: Dict[int, int] = field(default_factory=dict)

    def fairness(self) -> float:
        """min/max issued across clients (1.0 = perfectly fair)."""
        if not self.per_client_issued:
            return 1.0
        counts = list(self.per_client_issued.values())
        hi = max(counts)
        return (min(counts) / hi) if hi else 1.0


class ControllerFrontend:
    """Bounded request queues + arbitration for multiple clients.

    Parameters
    ----------
    num_clients:
        Accelerators (CORELETs/tiles) sharing the controller.
    queue_depth:
        Per-client queue capacity; enqueue fails when full (the client
        stalls, as real request queues do).
    policy:
        ``"round_robin"`` (default) or ``"oldest_first"``.
    """

    POLICIES = ("round_robin", "oldest_first")

    def __init__(
        self,
        num_clients: int,
        queue_depth: int = 16,
        policy: str = "round_robin",
    ):
        if num_clients < 1:
            raise ValueError("num_clients must be positive")
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}")
        self.num_clients = num_clients
        self.queue_depth = queue_depth
        self.policy = policy
        self.stats = FrontendStats()
        self._queues: List[Deque[Tuple[int, MemoryRequest]]] = [
            deque() for _ in range(num_clients)
        ]
        self._next_client = 0
        self._arrival = 0

    # ------------------------------------------------------------------
    def enqueue(self, client: int, request: MemoryRequest) -> bool:
        """Accept a request from ``client``; False if its queue is full."""
        if not 0 <= client < self.num_clients:
            raise IndexError(f"client {client} out of range")
        queue = self._queues[client]
        if len(queue) >= self.queue_depth:
            self.stats.rejected_full += 1
            return False
        queue.append((self._arrival, request))
        self._arrival += 1
        self.stats.accepted += 1
        return True

    def occupancy(self, client: int) -> int:
        return len(self._queues[client])

    def pending(self) -> int:
        return sum(len(q) for q in self._queues)

    # ------------------------------------------------------------------
    def issue(self) -> Optional[Tuple[int, MemoryRequest]]:
        """Arbitrate and pop one request; None when all queues empty."""
        if self.pending() == 0:
            return None
        if self.policy == "round_robin":
            picked = self._issue_round_robin()
        else:
            picked = self._issue_oldest_first()
        if picked is not None:
            client, _ = picked
            self.stats.issued += 1
            self.stats.per_client_issued[client] = (
                self.stats.per_client_issued.get(client, 0) + 1
            )
        return picked

    def issue_all(self) -> List[Tuple[int, MemoryRequest]]:
        """Drain every queued request in arbitration order."""
        out = []
        while True:
            picked = self.issue()
            if picked is None:
                return out
            out.append(picked)

    # ------------------------------------------------------------------
    def _issue_round_robin(self) -> Optional[Tuple[int, MemoryRequest]]:
        for offset in range(self.num_clients):
            client = (self._next_client + offset) % self.num_clients
            if self._queues[client]:
                _, request = self._queues[client].popleft()
                self._next_client = (client + 1) % self.num_clients
                return client, request
        return None

    def _issue_oldest_first(self) -> Optional[Tuple[int, MemoryRequest]]:
        best_client = None
        best_arrival = None
        for client, queue in enumerate(self._queues):
            if queue and (best_arrival is None or queue[0][0] < best_arrival):
                best_arrival = queue[0][0]
                best_client = client
        if best_client is None:
            return None
        _, request = self._queues[best_client].popleft()
        return best_client, request
