"""Memory Request Generator and Key Index Generator engines (section V-C).

Each per-channel MRG walks its channel's slice of the memory-request
vector with a **base register** (the starting key index on that channel)
and a shared **up counter** that advances by the number of channels --
reproducing the paper's address-generation microarchitecture.  The KIG
has the identical structure but walks the *spatial locality vector* to
hand the accelerator the indices it can start computing on immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.memory.commands import MemoryRequest
from repro.memory.layout import KVLayout


@dataclass
class MemoryRequestGenerator:
    """Per-channel request generation from a binary request vector."""

    layout: KVLayout
    channel: int

    def __post_init__(self):
        if not 0 <= self.channel < self.layout.num_channels:
            raise ValueError("channel out of range for layout")
        #: The paper's base register: first token index on this channel.
        self.base_register = self.channel

    def generate(
        self, request_vector: np.ndarray, query_index: int = 0
    ) -> List[MemoryRequest]:
        """Produce requests for this channel's '1' entries.

        The up counter starts at zero and increments by the channel count
        each cycle; ``base + counter`` is the token index examined.
        """
        vector = np.asarray(request_vector).astype(np.uint8)
        requests: List[MemoryRequest] = []
        counter = 0
        while self.base_register + counter < vector.size:
            token = self.base_register + counter
            if vector[token]:
                requests.append(
                    MemoryRequest(token_index=token, query_index=query_index)
                )
            counter += self.layout.num_channels
        return requests


@dataclass
class KeyIndexGenerator:
    """Same microarchitecture as the MRG, fed the locality vector.

    Emits the key indices already resident on chip so the accelerator can
    bootstrap score computation while fetches are in flight.
    """

    layout: KVLayout
    channel: int

    def __post_init__(self):
        self._mrg = MemoryRequestGenerator(self.layout, self.channel)

    def generate(self, spatial_locality_vector: np.ndarray) -> List[int]:
        return [
            r.token_index
            for r in self._mrg.generate(spatial_locality_vector)
        ]


def generate_all_requests(
    layout: KVLayout, request_vector: np.ndarray, query_index: int = 0
) -> List[MemoryRequest]:
    """Run every channel's MRG and merge the per-channel request lists."""
    requests: List[MemoryRequest] = []
    for channel in range(layout.num_channels):
        mrg = MemoryRequestGenerator(layout, channel)
        requests.extend(mrg.generate(request_vector, query_index))
    return sorted(requests, key=lambda r: r.token_index)
