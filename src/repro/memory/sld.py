"""Spatial Locality Detection engine (paper section V-C, Eqs. 4-5).

Given the binary pruning vectors of the previous and current query
('1' -> pruned), the SLD engine computes:

- **memory request vector** (Eq. 4): keys unpruned *now* but pruned for
  the previous query -- these must be fetched from memory;
- **spatial locality vector** (Eq. 5): keys unpruned for *both* queries
  -- already in the on-chip K buffer, so score computation can
  bootstrap on them immediately.

The engine additionally consults the buffer residency set maintained by
the controller frontend, because with capacity eviction "unpruned last
query" is necessary but not sufficient for on-chip presence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class SLDOutput:
    """Result of one SLD evaluation for a query transition."""

    memory_request_vector: np.ndarray  # '1' -> must fetch
    spatial_locality_vector: np.ndarray  # '1' -> reuse from on-chip buffer

    @property
    def fetch_count(self) -> int:
        return int(self.memory_request_vector.sum())

    @property
    def reuse_count(self) -> int:
        return int(self.spatial_locality_vector.sum())


class SpatialLocalityDetector:
    """Stateful SLD engine tracking the previous pruning vector."""

    def __init__(self, seq_len: int):
        if seq_len < 1:
            raise ValueError("seq_len must be positive")
        self.seq_len = seq_len
        # Before the first query nothing is on chip: treat everything as
        # pruned previously so every unpruned key becomes a fetch.
        self._previous = np.ones(seq_len, dtype=np.uint8)

    def reset(self) -> None:
        self._previous = np.ones(self.seq_len, dtype=np.uint8)

    def step(
        self,
        pruning_vector: np.ndarray,
        resident: Optional[np.ndarray] = None,
    ) -> SLDOutput:
        """Advance to the next query's pruning vector.

        Parameters
        ----------
        pruning_vector:
            ``P^t``, '1' -> pruned, length ``seq_len``.
        resident:
            Optional boolean mask of keys currently in the on-chip K
            buffer.  When given it overrides the Eq. 4/5 approximation
            (which assumes everything unpruned last query is still
            resident) with ground truth from the buffer model.
        """
        current = np.asarray(pruning_vector, dtype=np.uint8)
        if current.shape != (self.seq_len,):
            raise ValueError(
                f"pruning vector must have length {self.seq_len}"
            )
        unpruned_now = current == 0
        if resident is None:
            unpruned_prev = self._previous == 0
            on_chip = unpruned_prev
        else:
            on_chip = np.asarray(resident, dtype=bool)
            if on_chip.shape != (self.seq_len,):
                raise ValueError("resident mask must have length seq_len")
        request = (unpruned_now & ~on_chip).astype(np.uint8)  # Eq. 4
        reuse = (unpruned_now & on_chip).astype(np.uint8)  # Eq. 5
        self._previous = current.copy()
        return SLDOutput(
            memory_request_vector=request, spatial_locality_vector=reuse
        )
