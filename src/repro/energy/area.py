"""Area / throughput / efficiency metrics and prior-work data (Table III).

Carries the published numbers for A3, SpAtten, and LeOPArd alongside
M-SPRINT's reported figures, plus helpers to compute GOPs/s, GOPs/J,
GOPs/s/mm2 from simulation output and to apply Dennard scaling across
process nodes (the paper's 65 nm vs 40 nm normalization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PriorWork:
    """One row of Table III."""

    name: str
    seq_len_range: str
    process_nm: int
    area_mm2: float
    key_buffer_kb: float
    value_buffer_kb: float
    gops_per_s: float
    gops_per_j: float
    gops_per_s_mm2: float
    gops_per_s_j_mm2: float
    memory_cost_included: bool


#: Published Table III rows.
PRIOR_WORK: Dict[str, PriorWork] = {
    "A3": PriorWork(
        name="A3", seq_len_range="50-384", process_nm=40, area_mm2=2.1,
        key_buffer_kb=20, value_buffer_kb=20, gops_per_s=518.0,
        gops_per_j=4709.1, gops_per_s_mm2=249.0, gops_per_s_j_mm2=2263.6,
        memory_cost_included=False,
    ),
    "SpAtten": PriorWork(
        name="SpAtten", seq_len_range="384-1024", process_nm=40, area_mm2=1.6,
        key_buffer_kb=24, value_buffer_kb=24, gops_per_s=360.0,
        gops_per_j=382.0, gops_per_s_mm2=238.0, gops_per_s_j_mm2=252.5,
        memory_cost_included=False,
    ),
    "LeOPArd": PriorWork(
        name="LeOPArd", seq_len_range="50-1024", process_nm=65, area_mm2=3.5,
        key_buffer_kb=48, value_buffer_kb=64, gops_per_s=574.1,
        gops_per_j=519.3, gops_per_s_mm2=165.5, gops_per_s_j_mm2=119.7,
        memory_cost_included=False,
    ),
    "M-SPRINT": PriorWork(
        name="M-SPRINT", seq_len_range="128-4096", process_nm=65, area_mm2=1.9,
        key_buffer_kb=16, value_buffer_kb=16, gops_per_s=1816.2,
        gops_per_j=902.7, gops_per_s_mm2=973.5, gops_per_s_j_mm2=469.7,
        memory_cost_included=True,
    ),
}

#: M-SPRINT die area (mm2) including the ~3% in-memory thresholding
#: overhead [141]; S-SPRINT layout is 1.18 x 0.8 mm2 (Figure 14).
M_SPRINT_AREA_MM2 = 1.9
S_SPRINT_AREA_MM2 = 1.18 * 0.8


@dataclass(frozen=True)
class AcceleratorMetrics:
    """Derived throughput/efficiency metrics for one simulated design."""

    ops: float  # total arithmetic operations (MAC = 2 ops)
    seconds: float
    joules: float
    area_mm2: float

    @property
    def gops_per_s(self) -> float:
        return self.ops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def gops_per_j(self) -> float:
        return self.ops / self.joules / 1e9 if self.joules > 0 else 0.0

    @property
    def gops_per_s_mm2(self) -> float:
        return self.gops_per_s / self.area_mm2 if self.area_mm2 > 0 else 0.0

    @property
    def gops_per_s_j_mm2(self) -> float:
        """Energy efficiency per area (the paper's GOPs/s/J/mm2 column).

        Reverse-engineering Table III (e.g. A3: 4709.1 / 2.1 = 2242 ~
        2263.6) shows the column is GOPs/J divided by area.
        """
        if self.area_mm2 <= 0:
            return 0.0
        return self.gops_per_j / self.area_mm2


def dennard_scale_energy(
    energy_j: float, from_nm: int, to_nm: int
) -> float:
    """First-order Dennard scaling of energy across nodes.

    Energy per op scales roughly with the cube of feature size under
    constant-field scaling ([37]); the paper uses this to compare its
    65 nm design against 40 nm prior work.
    """
    if from_nm <= 0 or to_nm <= 0:
        raise ValueError("process nodes must be positive")
    return energy_j * (to_nm / from_nm) ** 3
