"""Energy constants of the paper's Table II and section VII.

All values in picojoules, from the paper's 65 nm post-layout
simulations, the ARM memory compiler, and published ReRAM
characterizations ([21], [51], [89]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event energies (pJ) for SPRINT's microarchitectural units."""

    #: QK-PU / V-PU 64-tap 8-bit dot product (one key or value vector).
    dot_product_64tap_pj: float = 192.56
    #: Key/Value buffer access: 4 banks x 128-bit = 512 bits moved.
    kv_buffer_access_pj: float = 256.0
    #: Bits moved per charged buffer access.
    kv_buffer_access_bits: int = 512
    #: Softmax per element: 2 LUT accesses + multiply + division.
    softmax_element_pj: float = 89.8
    #: Analog comparators for one 128-column array evaluation.
    comparator_128col_pj: float = 5.34
    #: One analog comparator (41 fJ, [89]).
    comparator_single_pj: float = 0.041
    #: One in-memory dot-product pass over a 64x128 crossbar (DAC incl.).
    inmemory_array_op_pj: float = 833.6
    #: In-ReRAM MAC including DAC, 65 nm ([21]).
    inmemory_mac_pj: float = 0.10
    #: Standard ReRAM read, per 512-bit access (3.1 pJ/bit, [51]).
    reram_read_512b_pj: float = 1587.2
    #: Standard ReRAM write, per 512-bit access (24.4 pJ/bit).
    reram_write_512b_pj: float = 12492.8
    #: Bits per charged ReRAM access.
    reram_access_bits: int = 512

    @property
    def reram_read_per_bit_pj(self) -> float:
        return self.reram_read_512b_pj / self.reram_access_bits

    @property
    def reram_write_per_bit_pj(self) -> float:
        return self.reram_write_512b_pj / self.reram_access_bits

    def reram_read_vector_pj(self, vector_bytes: int = 64) -> float:
        """Energy to read one embedding vector (d bytes) from ReRAM."""
        return self.reram_read_per_bit_pj * vector_bytes * 8

    def reram_write_vector_pj(self, vector_bytes: int = 64) -> float:
        return self.reram_write_per_bit_pj * vector_bytes * 8

    def kv_buffer_vector_pj(self, vector_bytes: int = 64) -> float:
        """Energy for one vector's worth of K/V buffer traffic."""
        bits = vector_bytes * 8
        return self.kv_buffer_access_pj * bits / self.kv_buffer_access_bits


#: The canonical Table II instance.
TABLE_II = EnergyConstants()
