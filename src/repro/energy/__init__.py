"""Energy, area, and throughput models (paper Tables II and III)."""

from repro.energy.constants import EnergyConstants, TABLE_II
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.area import (
    PriorWork,
    PRIOR_WORK,
    AcceleratorMetrics,
    dennard_scale_energy,
)

__all__ = [
    "EnergyConstants",
    "TABLE_II",
    "EnergyModel",
    "EnergyBreakdown",
    "PriorWork",
    "PRIOR_WORK",
    "AcceleratorMetrics",
    "dennard_scale_energy",
]
