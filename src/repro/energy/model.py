"""Event-driven energy accounting with a categorized breakdown.

The simulator multiplies event counts by Table II constants, exactly as
the paper's methodology describes (section VII: "we multiply the average
number of operations ... by their corresponding energy consumption").
Categories match Figure 13's breakdown: ReRAM read / ReRAM write /
in-ReRAM pruning / on-chip read / on-chip write / QK-PU / V-PU /
Softmax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

import numpy as np

from repro.energy.constants import TABLE_II, EnergyConstants

#: Event tallies are either one sample's scalar count or a per-sample
#: count vector (the batched simulation core feeds whole workloads).
Tally = Union[float, np.ndarray]

#: Canonical breakdown categories, Figure 13 order.
CATEGORIES = (
    "reram_read",
    "reram_write",
    "inmemory_pruning",
    "onchip_read",
    "onchip_write",
    "qkpu",
    "vpu",
    "softmax",
)


@dataclass
class EnergyBreakdown:
    """Picojoule totals per category.

    Values are scalars for a single sample's accounting, or per-sample
    ``float64`` arrays when tallied through the batched interface (see
    :meth:`split` to recover one scalar breakdown per sample).
    """

    pj: Dict[str, Tally] = field(default_factory=lambda: {c: 0.0 for c in CATEGORIES})

    def add(self, category: str, picojoules: Tally) -> None:
        if category not in self.pj:
            raise KeyError(f"unknown energy category {category!r}")
        # Reassignment (not +=) so a scalar slot can widen to an array.
        self.pj[category] = self.pj[category] + picojoules

    def split(self) -> List["EnergyBreakdown"]:
        """One scalar breakdown per sample of an array-valued tally.

        Categories never tallied stay scalar zero and broadcast to every
        sample; at least one category must be an array to infer the
        sample count.
        """
        sizes = {v.shape[0] for v in self.pj.values() if isinstance(v, np.ndarray)}
        if len(sizes) > 1:
            raise ValueError(f"inconsistent tally lengths {sorted(sizes)}")
        if not sizes:
            raise ValueError("no array-valued categories to split")
        out = []
        for i in range(sizes.pop()):
            sample = EnergyBreakdown()
            for category, value in self.pj.items():
                sample.pj[category] = (
                    float(value[i]) if isinstance(value, np.ndarray) else value
                )
            out.append(sample)
        return out

    @property
    def total_pj(self) -> float:
        return sum(self.pj.values())

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12

    def fraction(self, category: str) -> float:
        total = self.total_pj
        return self.pj[category] / total if total > 0 else 0.0

    def memory_fraction(self) -> float:
        """Share spent on main-memory accesses (reads + writes)."""
        mem = self.pj["reram_read"] + self.pj["reram_write"]
        total = self.total_pj
        return mem / total if total > 0 else 0.0

    def read_fraction(self) -> float:
        """Share spent on main-memory *reads* (the Figure 1 metric).

        Reads are the capacity-dependent cost: key/value streaming
        repeats per query when buffers are short, while the one-time
        embedding writes belong to the projection GEMMs that produced
        Q/K/V.  This accounting reproduces Figure 1's end points (~8%
        at S=32 with full buffering, >60% at 20% capacity).
        """
        total = self.total_pj
        return self.pj["reram_read"] / total if total > 0 else 0.0

    def scaled(self, factor: float) -> "EnergyBreakdown":
        out = EnergyBreakdown()
        for k, v in self.pj.items():
            out.pj[k] = v * factor
        return out

    def merged(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        out = EnergyBreakdown()
        for k in out.pj:
            out.pj[k] = self.pj.get(k, 0.0) + other.pj.get(k, 0.0)
        return out


class EnergyModel:
    """Translate event counts into an :class:`EnergyBreakdown`.

    Every ``count_*`` tally accepts either a scalar (one sample) or a
    per-sample ``int64``/``float64`` array.  Array tallies multiply the
    Table II constant elementwise, so batching a workload produces
    bit-identical per-sample picojoules to N scalar tallies.
    """

    def __init__(
        self,
        constants: EnergyConstants = TABLE_II,
        vector_bytes: int = 64,
    ):
        self.constants = constants
        self.vector_bytes = vector_bytes
        self.breakdown = EnergyBreakdown()

    # -- main memory ----------------------------------------------------
    def count_reram_vector_reads(self, n: Tally) -> None:
        self.breakdown.add(
            "reram_read", n * self.constants.reram_read_vector_pj(self.vector_bytes)
        )

    def count_reram_vector_writes(self, n: Tally) -> None:
        self.breakdown.add(
            "reram_write", n * self.constants.reram_write_vector_pj(self.vector_bytes)
        )

    # -- in-memory pruning ----------------------------------------------
    def count_inmemory_array_ops(self, n: Tally) -> None:
        self.breakdown.add(
            "inmemory_pruning", n * self.constants.inmemory_array_op_pj
        )

    def count_comparator_ops(self, n_columns: Tally) -> None:
        self.breakdown.add(
            "inmemory_pruning", n_columns * self.constants.comparator_single_pj
        )

    # -- on-chip buffers --------------------------------------------------
    def count_buffer_vector_reads(self, n: Tally) -> None:
        self.breakdown.add(
            "onchip_read", n * self.constants.kv_buffer_vector_pj(self.vector_bytes)
        )

    def count_buffer_vector_writes(self, n: Tally) -> None:
        self.breakdown.add(
            "onchip_write", n * self.constants.kv_buffer_vector_pj(self.vector_bytes)
        )

    # -- compute ----------------------------------------------------------
    def count_qk_dot_products(self, n: Tally) -> None:
        self.breakdown.add("qkpu", n * self.constants.dot_product_64tap_pj)

    def count_v_mac_rows(self, n: Tally) -> None:
        self.breakdown.add("vpu", n * self.constants.dot_product_64tap_pj)

    def count_softmax_elements(self, n: Tally) -> None:
        self.breakdown.add("softmax", n * self.constants.softmax_element_pj)
