"""A small pure-numpy transformer encoder with pluggable attention policy.

The accuracy experiments (Figs. 5 and 9) need a model whose task accuracy
responds realistically to perturbations of the attention distribution.
This encoder accepts a :class:`repro.attention.policies.ScorePolicy`
at inference time, so the same forward pass evaluates the software
baseline, ideal runtime pruning, SPRINT, and the no-recompute ablation.

Weights are *constructed*, not trained: inputs carry planted class-signal
directions and a salience component that query/key projections preserve,
so full-precision attention concentrates on the informative tokens and
the task is solvable with high accuracy -- see DESIGN.md section 2 for
the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.attention.functional import softmax
from repro.attention.policies import ExactPolicy, ScorePolicy


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture of the evaluation transformer."""

    seq_len: int = 128
    embed_dim: int = 64
    num_heads: int = 4
    num_layers: int = 2
    num_classes: int = 4
    ffn_dim: int = 128
    seed: int = 7

    @property
    def head_dim(self) -> int:
        if self.embed_dim % self.num_heads:
            raise ValueError("embed_dim must be divisible by num_heads")
        return self.embed_dim // self.num_heads


def _orthogonal(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Random matrix with orthonormal columns (or rows if rows < cols)."""
    a = rng.normal(size=(rows, cols))
    q, _ = np.linalg.qr(a if rows >= cols else a.T)
    return q if rows >= cols else q.T


@dataclass
class _LayerWeights:
    w_q: np.ndarray
    w_k: np.ndarray
    w_v: np.ndarray
    w_o: np.ndarray
    w_ffn1: np.ndarray
    w_ffn2: np.ndarray


class TransformerClassifier:
    """Encoder + mean-pool + linear classifier, policy-parameterized.

    The class also exposes :meth:`score_matrices` so experiments can
    extract realistic pre-softmax score distributions for calibration.
    """

    def __init__(self, config: TransformerConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        e = config.embed_dim
        # Class prototype directions (orthonormal) used both to embed the
        # planted signal and to read it out.
        self.class_directions = _orthogonal(rng, e, config.num_classes)
        # Salience direction: signal tokens carry it; the constructed
        # Q/K projections preserve it so q.k is large for signal keys.
        self.salience = _orthogonal(rng, e, 1)[:, 0]
        self.layers: List[_LayerWeights] = []
        for _ in range(config.num_layers):
            near_identity = np.eye(e) + 0.05 * rng.normal(size=(e, e))
            self.layers.append(
                _LayerWeights(
                    w_q=near_identity.copy(),
                    w_k=near_identity.copy(),
                    w_v=np.eye(e) + 0.02 * rng.normal(size=(e, e)),
                    w_o=np.eye(e) + 0.02 * rng.normal(size=(e, e)),
                    w_ffn1=0.1 * rng.normal(size=(e, config.ffn_dim)),
                    w_ffn2=0.1 * rng.normal(size=(config.ffn_dim, e)),
                )
            )
        # (e + 1, num_classes): class prototypes plus a zero bias row;
        # tasks typically replace this via :meth:`fit_readout`.
        self.readout = np.vstack(
            [self.class_directions, np.zeros((1, config.num_classes))]
        )

    # ------------------------------------------------------------------
    # forward pieces
    # ------------------------------------------------------------------
    def _head_scores(
        self, x: np.ndarray, layer: _LayerWeights, head: int
    ) -> np.ndarray:
        d = self.config.head_dim
        sl = slice(head * d, (head + 1) * d)
        q = (x @ layer.w_q)[:, sl]
        k = (x @ layer.w_k)[:, sl]
        return (q @ k.T) / np.sqrt(d)

    def _attention_layer(
        self,
        x: np.ndarray,
        layer: _LayerWeights,
        policy: ScorePolicy,
        padding_mask: Optional[np.ndarray],
    ) -> np.ndarray:
        d = self.config.head_dim
        v_all = x @ layer.w_v
        q_all = x @ layer.w_q
        k_all = x @ layer.w_k
        scale = 1.0 / np.sqrt(d)
        out = np.empty_like(x)
        for head in range(self.config.num_heads):
            sl = slice(head * d, (head + 1) * d)
            q = q_all[:, sl]
            k = k_all[:, sl]
            scores = (q @ k.T) * scale
            probabilities, _ = policy.process(
                scores, padding_mask, q=q, k=k, scale=scale
            )
            out[:, sl] = probabilities @ v_all[:, sl]
        return out @ layer.w_o

    @staticmethod
    def _layer_norm(x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        std = x.std(axis=-1, keepdims=True) + 1e-6
        return (x - mean) / std

    def forward(
        self,
        x: np.ndarray,
        policy: Optional[ScorePolicy] = None,
        valid_len: Optional[int] = None,
    ) -> np.ndarray:
        """Return class logits for one ``(s, e)`` input sequence.

        CLS-style readout: position 0 carries no class information of
        its own, so the logits depend entirely on what its attention
        rows gathered -- the behaviour pruning must preserve.
        """
        return self.features(x, policy, valid_len) @ self.readout

    def features(
        self,
        x: np.ndarray,
        policy: Optional[ScorePolicy] = None,
        valid_len: Optional[int] = None,
    ) -> np.ndarray:
        """CLS hidden state (plus bias feature) after the encoder stack."""
        policy = policy or ExactPolicy()
        s = x.shape[0]
        valid_len = s if valid_len is None else valid_len
        valid = np.zeros(s, dtype=bool)
        valid[:valid_len] = True
        padding_mask = np.outer(valid, valid)
        h = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            attn = self._attention_layer(h, layer, policy, padding_mask)
            h = self._layer_norm(h + attn)
            ffn = np.tanh(h @ layer.w_ffn1) @ layer.w_ffn2
            h = self._layer_norm(h + ffn)
        return np.concatenate([h[0], [1.0]])

    def fit_readout(
        self,
        inputs,
        labels,
        valid_lens,
        ridge: float = 1.0,
    ) -> None:
        """Ridge-regress a classifier head on exact-attention features.

        Stands in for task fine-tuning: only the readout is learned, on
        features produced by *exact* attention, so every approximate
        policy is evaluated against the head the full-precision model
        would deploy (the paper's fine-tuned-then-quantized protocol).
        """
        feats = np.stack(
            [
                self.features(x, ExactPolicy(), vl)
                for x, vl in zip(inputs, valid_lens)
            ]
        )
        labels = np.asarray(labels, dtype=np.int64)
        onehot = np.eye(self.config.num_classes)[labels]
        gram = feats.T @ feats + ridge * np.eye(feats.shape[1])
        self.readout = np.linalg.solve(gram, feats.T @ onehot)

    def predict(
        self,
        x: np.ndarray,
        policy: Optional[ScorePolicy] = None,
        valid_len: Optional[int] = None,
    ) -> int:
        return int(np.argmax(self.forward(x, policy, valid_len)))

    def class_probabilities(
        self,
        x: np.ndarray,
        policy: Optional[ScorePolicy] = None,
        valid_len: Optional[int] = None,
    ) -> np.ndarray:
        return softmax(self.forward(x, policy, valid_len))

    def score_matrices(
        self, x: np.ndarray, layer_index: int = 0
    ) -> List[np.ndarray]:
        """Raw per-head score matrices of one layer (for calibration)."""
        if not 0 <= layer_index < len(self.layers):
            raise IndexError("layer_index out of range")
        h = np.asarray(x, dtype=np.float64)
        layer = self.layers[layer_index]
        return [
            self._head_scores(h, layer, head)
            for head in range(self.config.num_heads)
        ]
