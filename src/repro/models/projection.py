"""Projection and feed-forward layers with an 8-bit inference path.

The attention substrate consumes pre-projected Q/K/V; this module
provides the projection GEMMs that produce them -- and the feed-forward
network SPRINT repurposes its processing units for (paper section VII,
end-to-end study) -- in both float and quantized-int8 execution, with
operation counts for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attention.quantization import symmetric_quantize


@dataclass
class LayerStats:
    macs: int = 0
    dot_products_64tap: int = 0

    def merge(self, other: "LayerStats") -> None:
        self.macs += other.macs
        self.dot_products_64tap += other.dot_products_64tap


class LinearLayer:
    """A dense layer with symmetric int8 weights.

    ``forward`` runs in float (reference); ``forward_quantized`` runs
    the int8 path the accelerator executes: int8 activation x int8
    weight products accumulated in wide integers, rescaled at the end.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        taps: int = 64,
    ):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2-D (in, out)")
        self.bias = (
            np.zeros(self.weight.shape[1])
            if bias is None
            else np.asarray(bias, dtype=np.float64)
        )
        if self.bias.shape != (self.weight.shape[1],):
            raise ValueError("bias shape mismatch")
        self.taps = taps
        self._w_quant = symmetric_quantize(self.weight, bits=8)
        self.stats = LayerStats()

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def _count(self, rows: int) -> None:
        macs = rows * self.in_features * self.out_features
        self.stats.macs += macs
        self.stats.dot_products_64tap += -(-macs // self.taps)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._count(x.shape[0] if x.ndim == 2 else 1)
        return x @ self.weight + self.bias

    def forward_quantized(self, x: np.ndarray) -> np.ndarray:
        """Int8 x int8 inference with integer accumulation."""
        x = np.asarray(x, dtype=np.float64)
        x_quant = symmetric_quantize(x, bits=8)
        self._count(x.shape[0] if x.ndim == 2 else 1)
        acc = x_quant.codes.astype(np.int64) @ self._w_quant.codes.astype(
            np.int64
        )
        return acc * (x_quant.scale * self._w_quant.scale) + self.bias

    def quantization_error(self, x: np.ndarray) -> float:
        """Max |float - quantized| output deviation on ``x``."""
        return float(
            np.max(np.abs(self.forward(x) - self.forward_quantized(x)))
        )


class QKVProjection:
    """The three projection GEMMs feeding one attention layer."""

    def __init__(
        self,
        w_q: np.ndarray,
        w_k: np.ndarray,
        w_v: np.ndarray,
        taps: int = 64,
    ):
        self.q = LinearLayer(w_q, taps=taps)
        self.k = LinearLayer(w_k, taps=taps)
        self.v = LinearLayer(w_v, taps=taps)

    @classmethod
    def random(
        cls, embed_dim: int, proj_dim: Optional[int] = None, seed: int = 0
    ) -> "QKVProjection":
        rng = np.random.default_rng(seed)
        proj_dim = proj_dim or embed_dim
        scale = 1.0 / np.sqrt(embed_dim)
        return cls(
            rng.normal(0, scale, (embed_dim, proj_dim)),
            rng.normal(0, scale, (embed_dim, proj_dim)),
            rng.normal(0, scale, (embed_dim, proj_dim)),
        )

    def forward(
        self, x: np.ndarray, quantized: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        f = "forward_quantized" if quantized else "forward"
        return (
            getattr(self.q, f)(x),
            getattr(self.k, f)(x),
            getattr(self.v, f)(x),
        )

    def total_stats(self) -> LayerStats:
        stats = LayerStats()
        for layer in (self.q, self.k, self.v):
            stats.merge(layer.stats)
        return stats


class FeedForward:
    """The e -> 4e -> e FFN block of a transformer layer.

    SPRINT executes this on its QK-PU/V-PU engines with FFN weights
    cached in the K/V buffers (section VII, end-to-end study); the
    stats feed the same energy accounting.
    """

    def __init__(
        self, embed_dim: int, hidden_dim: Optional[int] = None, seed: int = 0
    ):
        rng = np.random.default_rng(seed)
        hidden_dim = hidden_dim or 4 * embed_dim
        self.up = LinearLayer(
            rng.normal(0, 1.0 / np.sqrt(embed_dim), (embed_dim, hidden_dim))
        )
        self.down = LinearLayer(
            rng.normal(0, 1.0 / np.sqrt(hidden_dim), (hidden_dim, embed_dim))
        )

    def forward(self, x: np.ndarray, quantized: bool = False) -> np.ndarray:
        f = "forward_quantized" if quantized else "forward"
        hidden = np.maximum(getattr(self.up, f)(x), 0.0)  # ReLU
        return getattr(self.down, f)(hidden)

    def macs_per_token(self) -> int:
        return (
            self.up.in_features * self.up.out_features
            + self.down.in_features * self.down.out_features
        )

    def total_stats(self) -> LayerStats:
        stats = LayerStats()
        stats.merge(self.up.stats)
        stats.merge(self.down.stats)
        return stats
