"""Synthetic evaluation tasks with planted, attention-dependent labels.

Classification: each sequence contains a minority of "signal" tokens
carrying one class's prototype direction plus a salience component; the
label is that class.  Solving the task requires attending to the signal
tokens -- exactly the behaviour runtime pruning must preserve.

Language modelling: the model predicts, at every position, the topic
class planted in the attended context; perplexity is the exponentiated
cross-entropy of those predictions (lower is better), standing in for
GPT-2-L's WikiText-2 perplexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attention.policies import ExactPolicy, ScorePolicy
from repro.models.transformer import TransformerClassifier, TransformerConfig


@dataclass
class SyntheticTask:
    """A batch of planted-signal sequences plus the evaluation model."""

    model: TransformerClassifier
    inputs: List[np.ndarray]
    labels: np.ndarray
    valid_lens: List[int]
    kind: str = "classification"  # or "lm"

    @property
    def num_samples(self) -> int:
        return len(self.inputs)


def _make_sequence(
    model: TransformerClassifier,
    label: int,
    valid_len: int,
    seq_len: int,
    rng: np.random.Generator,
    signal_fraction: float,
    signal_amplitude: float,
    noise_sigma: float,
    distractor_fraction: float = 0.15,
    distractor_salience: float = 0.85,
) -> np.ndarray:
    """Build one planted sequence.

    Position 0 is a CLS-style probe (salience only, no class); signal
    tokens carry the true class direction at full salience; distractor
    tokens carry *wrong* class directions at just-below-threshold
    salience, so approximate thresholding that keeps them (or inflates
    their kept score without recompute) pulls the prediction away.
    """
    e = model.config.embed_dim
    num_classes = model.config.num_classes
    x = rng.normal(0.0, noise_sigma, size=(seq_len, e))
    # CLS probe: attends to salient keys, carries no class direction.
    x[0] = signal_amplitude * model.salience + rng.normal(
        0.0, 0.1 * noise_sigma, size=e
    )
    body = np.arange(1, valid_len)
    num_signal = max(2, int(round(valid_len * signal_fraction)))
    num_distract = max(1, int(round(valid_len * distractor_fraction)))
    chosen = rng.choice(body, size=min(len(body), num_signal + num_distract),
                        replace=False)
    signal_positions = chosen[:num_signal]
    distractor_positions = chosen[num_signal:]
    direction = model.class_directions[:, label]
    x[signal_positions] += (
        signal_amplitude * direction + signal_amplitude * model.salience
    )
    # Every distractor in a sample pushes toward the *same* wrong class,
    # so losing score resolution (which equalizes their attention weight
    # with the true signal's) can actually flip the prediction.
    wrong = int((label + 1 + rng.integers(num_classes - 1)) % num_classes)
    for pos in distractor_positions:
        x[pos] += (
            signal_amplitude * model.class_directions[:, wrong]
            + distractor_salience * signal_amplitude * model.salience
        )
    x[valid_len:] = 0.0  # padded tail
    return x


def make_classification_task(
    num_samples: int = 64,
    seq_len: int = 128,
    valid_fraction: float = 0.5,
    num_classes: int = 4,
    *,
    signal_fraction: float = 0.1,
    signal_amplitude: float = 8.0,
    noise_sigma: float = 0.7,
    distractor_fraction: float = 0.15,
    distractor_salience: float = 0.7,
    seed: int = 11,
    config: Optional[TransformerConfig] = None,
) -> SyntheticTask:
    """Build a classification task with planted attention structure.

    ``signal_amplitude`` controls how far above the noise floor the
    informative scores sit; the default puts a meaningful share of
    decisions near the pruning threshold so approximation errors are
    visible in accuracy (as in the paper's Fig. 5 sensitivity study).
    """
    config = config or TransformerConfig(
        seq_len=seq_len, num_classes=num_classes, seed=seed
    )
    model = TransformerClassifier(config)
    rng = np.random.default_rng(seed)

    def draw(count):
        inputs, labels, valid_lens = [], [], []
        for _ in range(count):
            label = int(rng.integers(num_classes))
            valid_len = max(
                6,
                int(round(seq_len * valid_fraction * rng.uniform(0.85, 1.15))),
            )
            valid_len = min(valid_len, seq_len)
            inputs.append(
                _make_sequence(
                    model, label, valid_len, seq_len, rng,
                    signal_fraction, signal_amplitude, noise_sigma,
                    distractor_fraction=distractor_fraction,
                    distractor_salience=distractor_salience,
                )
            )
            labels.append(label)
            valid_lens.append(valid_len)
        return inputs, labels, valid_lens

    # "Fine-tune" the readout on an exact-attention training split, then
    # evaluate every policy on a held-out test split.
    train_x, train_y, train_v = draw(max(2 * num_samples, 48))
    model.fit_readout(train_x, train_y, train_v)
    inputs, labels, valid_lens = draw(num_samples)
    return SyntheticTask(
        model=model,
        inputs=inputs,
        labels=np.array(labels),
        valid_lens=valid_lens,
        kind="classification",
    )


def make_lm_task(
    num_samples: int = 32,
    seq_len: int = 128,
    num_classes: int = 8,
    *,
    signal_amplitude: float = 8.0,
    noise_sigma: float = 0.7,
    distractor_salience: float = 0.7,
    seed: int = 13,
    config: Optional[TransformerConfig] = None,
) -> SyntheticTask:
    """Topic-prediction LM proxy scored by perplexity (no padding)."""
    config = config or TransformerConfig(
        seq_len=seq_len, num_classes=num_classes, seed=seed
    )
    model = TransformerClassifier(config)
    rng = np.random.default_rng(seed)

    def draw(count):
        inputs, labels, valid_lens = [], [], []
        for _ in range(count):
            label = int(rng.integers(num_classes))
            inputs.append(
                _make_sequence(
                    model, label, seq_len, seq_len, rng,
                    0.1, signal_amplitude, noise_sigma,
                    distractor_salience=distractor_salience,
                )
            )
            labels.append(label)
            valid_lens.append(seq_len)
        return inputs, labels, valid_lens

    train_x, train_y, train_v = draw(max(2 * num_samples, 48))
    model.fit_readout(train_x, train_y, train_v)
    inputs, labels, valid_lens = draw(num_samples)
    return SyntheticTask(
        model=model,
        inputs=inputs,
        labels=np.array(labels),
        valid_lens=valid_lens,
        kind="lm",
    )


def evaluate_accuracy(
    task: SyntheticTask, policy: Optional[ScorePolicy] = None
) -> float:
    """Top-1 accuracy of the task model under ``policy``."""
    policy = policy or ExactPolicy()
    correct = 0
    for x, label, valid_len in zip(task.inputs, task.labels, task.valid_lens):
        if task.model.predict(x, policy, valid_len) == int(label):
            correct += 1
    return correct / max(task.num_samples, 1)


def evaluate_perplexity(
    task: SyntheticTask, policy: Optional[ScorePolicy] = None
) -> float:
    """exp(mean cross-entropy) of the label under ``policy``."""
    policy = policy or ExactPolicy()
    nll = []
    for x, label, valid_len in zip(task.inputs, task.labels, task.valid_lens):
        probs = task.model.class_probabilities(x, policy, valid_len)
        nll.append(-np.log(max(float(probs[int(label)]), 1e-12)))
    return float(np.exp(np.mean(nll))) if nll else float("nan")


def evaluate(
    task: SyntheticTask, policy: Optional[ScorePolicy] = None
) -> Tuple[str, float]:
    """Dispatch on task kind; returns ``(metric_name, value)``."""
    if task.kind == "lm":
        return "perplexity", evaluate_perplexity(task, policy)
    return "accuracy", evaluate_accuracy(task, policy)
