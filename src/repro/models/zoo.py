"""The benchmark model zoo (paper section VII, Methodology).

Each entry records the statistics the simulator needs: default sequence
length for the paper's dataset, per-head embedding size (d = 64 for all
models), the pruning rate the learned thresholds achieved after
fine-tuning, and the mean padded fraction of the input sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ModelSpec:
    """Architectural + workload statistics for one benchmark model."""

    name: str
    seq_len: int
    embed_dim: int
    num_heads: int
    num_layers: int
    pruning_rate: float
    padding_ratio: float
    dataset: str
    metric: str  # "accuracy" | "f1" | "perplexity"
    #: Decoder-style causal attention (GPT-2): keys beyond the query
    #: position are masked, halving the useful score area.
    causal: bool = False
    #: Spatial-locality strength of the unpruned-key pattern; ViT shows
    #: ~2.6x less locality than the language models (paper section VII-A).
    locality: float = 0.8

    @property
    def head_dim(self) -> int:
        """Per-head embedding size (d); 64 for every paper model."""
        return self.embed_dim // self.num_heads

    @property
    def valid_len(self) -> int:
        """Mean number of non-padded tokens."""
        return max(1, int(round(self.seq_len * (1.0 - self.padding_ratio))))

    @property
    def is_generative(self) -> bool:
        return self.metric == "perplexity"


def _spec(**kwargs) -> ModelSpec:
    return ModelSpec(**kwargs)


#: Pruning rates and padding fractions from paper section VII; sequence
#: lengths are the defaults for each dataset (197 CIFAR10 / 384 SQUAD /
#: 1024 WikiText-2).  BERT-B's 46% padded area is stated in section VI.
MODEL_ZOO: Dict[str, ModelSpec] = {
    "BERT-B": _spec(
        name="BERT-B", seq_len=384, embed_dim=768, num_heads=12, num_layers=12,
        pruning_rate=0.746, padding_ratio=0.46, dataset="SQUAD", metric="f1",
    ),
    "BERT-L": _spec(
        name="BERT-L", seq_len=384, embed_dim=1024, num_heads=16, num_layers=24,
        pruning_rate=0.755, padding_ratio=0.46, dataset="SQUAD", metric="f1",
    ),
    "ALBERT-XL": _spec(
        name="ALBERT-XL", seq_len=384, embed_dim=2048, num_heads=32,
        num_layers=24, pruning_rate=0.651, padding_ratio=0.46,
        dataset="SQUAD", metric="f1",
    ),
    "ALBERT-XXL": _spec(
        name="ALBERT-XXL", seq_len=384, embed_dim=4096, num_heads=64,
        num_layers=12, pruning_rate=0.731, padding_ratio=0.46,
        dataset="SQUAD", metric="f1",
    ),
    "ViT-B": _spec(
        name="ViT-B", seq_len=197, embed_dim=768, num_heads=12, num_layers=12,
        pruning_rate=0.644, padding_ratio=0.0, dataset="CIFAR10",
        metric="accuracy", locality=0.55,
    ),
    "GPT-2-L": _spec(
        name="GPT-2-L", seq_len=1024, embed_dim=1280, num_heads=20,
        num_layers=36, pruning_rate=0.739, padding_ratio=0.0,
        dataset="WikiText-2", metric="perplexity", causal=True,
    ),
    "Synth-1": _spec(
        name="Synth-1", seq_len=2048, embed_dim=1024, num_heads=16,
        num_layers=24, pruning_rate=0.75, padding_ratio=0.5,
        dataset="synthetic", metric="accuracy",
    ),
    "Synth-2": _spec(
        name="Synth-2", seq_len=4096, embed_dim=1024, num_heads=16,
        num_layers=24, pruning_rate=0.75, padding_ratio=0.5,
        dataset="synthetic", metric="accuracy",
    ),
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name (case-insensitive)."""
    key = name.upper() if name.upper() in MODEL_ZOO else name
    for candidate in (name, key, name.title()):
        if candidate in MODEL_ZOO:
            return MODEL_ZOO[candidate]
    matches = [k for k in MODEL_ZOO if k.lower() == name.lower()]
    if matches:
        return MODEL_ZOO[matches[0]]
    raise KeyError(
        f"unknown model {name!r}; available: {', '.join(sorted(MODEL_ZOO))}"
    )


def list_models() -> List[str]:
    """Names of all benchmark models, paper order."""
    return list(MODEL_ZOO)
