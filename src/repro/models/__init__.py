"""Transformer model zoo and synthetic evaluation tasks (pure numpy).

The paper evaluates fine-tuned HuggingFace checkpoints; this environment
has no network or PyTorch, so the zoo carries each model's *published*
architectural and pruning statistics (sequence length, pruning rate,
padding fraction, metric) and the accuracy experiments run on a numpy
transformer with planted attention structure -- see DESIGN.md section 2
for why this preserves the behaviour under study.
"""

from repro.models.zoo import MODEL_ZOO, ModelSpec, get_model, list_models
from repro.models.projection import FeedForward, LinearLayer, QKVProjection
from repro.models.transformer import TransformerClassifier, TransformerConfig
from repro.models.tasks import (
    SyntheticTask,
    evaluate_accuracy,
    evaluate_perplexity,
    make_classification_task,
    make_lm_task,
)

__all__ = [
    "LinearLayer",
    "QKVProjection",
    "FeedForward",
    "ModelSpec",
    "MODEL_ZOO",
    "get_model",
    "list_models",
    "TransformerConfig",
    "TransformerClassifier",
    "SyntheticTask",
    "make_classification_task",
    "make_lm_task",
    "evaluate_accuracy",
    "evaluate_perplexity",
]
