"""Reproduction of SPRINT (MICRO 2022).

SPRINT accelerates transformer self-attention by pruning low-score
query-key pairs *inside* ReRAM memory (approximate analog thresholding)
and recomputing only the surviving scores on chip in full precision.

Top-level convenience re-exports cover the most common entry points;
each subpackage carries the full API:

- :mod:`repro.attention`   -- attention math, runtime pruning, quantization
- :mod:`repro.models`      -- numpy transformer zoo and synthetic tasks
- :mod:`repro.reram`       -- ReRAM crossbar / transposable-array substrate
- :mod:`repro.memory`      -- memory controller, commands, timing, SLD engine
- :mod:`repro.accelerator` -- CORELET on-chip accelerator and baseline
- :mod:`repro.energy`      -- Table II energy constants and accounting
- :mod:`repro.workloads`   -- calibrated synthetic pruning/padding workloads
- :mod:`repro.core`        -- the SPRINT system simulator (the contribution)
- :mod:`repro.serving`     -- multi-request traffic, batching, tail latency
- :mod:`repro.experiments` -- one module per paper figure/table
"""

from repro.core.configs import (
    SprintConfig,
    L_SPRINT,
    M_SPRINT,
    S_SPRINT,
)
from repro.core.system import ExecutionMode, SprintSystem
from repro.models.zoo import MODEL_ZOO, ModelSpec, get_model

__all__ = [
    "SprintConfig",
    "S_SPRINT",
    "M_SPRINT",
    "L_SPRINT",
    "SprintSystem",
    "ExecutionMode",
    "ModelSpec",
    "MODEL_ZOO",
    "get_model",
]

__version__ = "1.0.0"
