"""Design-space exploration over CORELET count and on-chip capacity.

The paper fixes three configurations (S/M/L); an adopter of the design
wants the full frontier: for a target workload, which (CORELETs, cache)
points are Pareto-optimal in (latency, energy, area)?  This module
sweeps the space on the event-count simulator and extracts the
frontier, plus a first-order area model anchored to the paper's
Figure 14 layout (S-SPRINT = 1.18 x 0.8 mm2 at 16 KB / 1 CORELET).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.configs import SprintConfig
from repro.core.system import ExecutionMode, SprintSystem
from repro.energy.area import S_SPRINT_AREA_MM2
from repro.models.zoo import ModelSpec, get_model

#: First-order area model (65 nm): the S-SPRINT layout splits roughly
#: half SRAM / half logic; both scale linearly in their resource.
_BASE_LOGIC_MM2 = S_SPRINT_AREA_MM2 * 0.5
_BASE_SRAM_MM2_PER_KB = (S_SPRINT_AREA_MM2 * 0.5) / 16.0
#: ReRAM in-memory thresholding overhead: ~6% of S-SPRINT (Figure 14).
_RERAM_OVERHEAD_MM2 = S_SPRINT_AREA_MM2 * 0.06


def estimate_area_mm2(num_corelets: int, cache_kb: int) -> float:
    """Die area of a (CORELETs, cache) point, Figure 14-anchored."""
    if num_corelets < 1 or cache_kb < 1:
        raise ValueError("resources must be positive")
    logic = _BASE_LOGIC_MM2 * num_corelets
    sram = _BASE_SRAM_MM2_PER_KB * cache_kb
    return logic + sram + _RERAM_OVERHEAD_MM2


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    num_corelets: int
    cache_kb: int
    cycles: float
    energy_pj: float
    area_mm2: float

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ x cycles)."""
        return self.energy_pj * self.cycles

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance in (cycles, energy, area)."""
        no_worse = (
            self.cycles <= other.cycles
            and self.energy_pj <= other.energy_pj
            and self.area_mm2 <= other.area_mm2
        )
        strictly_better = (
            self.cycles < other.cycles
            or self.energy_pj < other.energy_pj
            or self.area_mm2 < other.area_mm2
        )
        return no_worse and strictly_better


def make_config(num_corelets: int, cache_kb: int) -> SprintConfig:
    """A SPRINT configuration at an arbitrary design point."""
    return SprintConfig(
        name=f"DSE-{num_corelets}c-{cache_kb}KB",
        num_corelets=num_corelets,
        onchip_cache_kb=cache_kb,
        num_qkpu=num_corelets,
        num_vpu=num_corelets,
        num_softmax=num_corelets,
        query_buffer_bytes=64 * num_corelets,
        index_buffer_bytes=512 * num_corelets,
    )


def sweep(
    model: ModelSpec | str = "BERT-B",
    corelet_counts: Sequence[int] = (1, 2, 4, 8),
    cache_sizes_kb: Sequence[int] = (8, 16, 32, 64),
    mode: ExecutionMode = ExecutionMode.SPRINT,
    num_samples: int = 1,
    seed: int = 1,
) -> List[DesignPoint]:
    """Evaluate the full (CORELETs x cache) grid on one model."""
    spec = get_model(model) if isinstance(model, str) else model
    points: List[DesignPoint] = []
    for n in corelet_counts:
        for kb in cache_sizes_kb:
            config = make_config(n, kb)
            report = SprintSystem(config).simulate_model(
                spec, mode, num_samples=num_samples, seed=seed
            )
            points.append(
                DesignPoint(
                    num_corelets=n,
                    cache_kb=kb,
                    cycles=report.cycles,
                    energy_pj=report.total_energy_pj,
                    area_mm2=estimate_area_mm2(n, kb),
                )
            )
    return points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by cycles."""
    frontier = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.cycles)


def best_under_area(
    points: Sequence[DesignPoint], area_budget_mm2: float
) -> Optional[DesignPoint]:
    """Lowest-EDP point that fits an area budget (None if none fit)."""
    feasible = [p for p in points if p.area_mm2 <= area_budget_mm2]
    if not feasible:
        return None
    return min(feasible, key=lambda p: p.edp)


def format_table(points: Sequence[DesignPoint]) -> str:
    frontier = set(id(p) for p in pareto_frontier(points))
    lines = [
        "Design-space exploration (SPRINT mode)",
        f"{'corelets':>8} {'cache':>7} {'cycles':>12} {'energy uJ':>10} "
        f"{'area mm2':>9} {'EDP':>12} {'pareto':>7}",
    ]
    for p in sorted(points, key=lambda p: (p.num_corelets, p.cache_kb)):
        lines.append(
            f"{p.num_corelets:>8d} {p.cache_kb:>5d}KB {p.cycles:>12,.0f} "
            f"{p.energy_pj / 1e6:>10.2f} {p.area_mm2:>9.2f} "
            f"{p.edp:>12.3g} {'*' if id(p) in frontier else '':>7}"
        )
    return "\n".join(lines)
