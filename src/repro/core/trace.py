"""Per-query execution traces for analysis and debugging.

The aggregate reports of :mod:`repro.core.results` answer "how fast /
how much energy"; a trace answers "what happened on query 57".  The
:class:`TraceRecorder` captures one event row per query -- unpruned
count, fetch/reuse split, compute vs memory cycles, which side bound
the latency -- and offers simple timeline analyses (bound histogram,
burstiness, worst queries).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.configs import SprintConfig
from repro.core.system import simulate_sld_traffic
from repro.memory.timing import DEFAULT_TIMING
from repro.workloads.generator import WorkloadSample


@dataclass(frozen=True)
class QueryTraceEvent:
    """One query's execution record."""

    query: int
    unpruned: int
    fetched: int
    reused: int
    compute_cycles: int
    memory_cycles: int

    @property
    def latency_cycles(self) -> int:
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def bound(self) -> str:
        """Which side determined the latency."""
        if self.memory_cycles > self.compute_cycles:
            return "memory"
        return "compute"


@dataclass
class TraceRecorder:
    """Record and analyze per-query events for one head's execution."""

    events: List[QueryTraceEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def trace_sprint(
        cls,
        sample: WorkloadSample,
        config: SprintConfig,
        timing=DEFAULT_TIMING,
    ) -> "TraceRecorder":
        """Trace the SPRINT execution of one workload sample.

        Mirrors :class:`repro.core.batched.SprintStrategy` (the SPRINT
        cycle model) but keeps every per-query record instead of
        summing.
        """
        valid = sample.valid_len
        keep = sample.keep_mask[:valid, :valid]
        fetches, reuses = simulate_sld_traffic(
            keep, config.kv_capacity_vectors
        )
        n = config.num_corelets
        per_key = -(-config.head_dim // config.mac_taps)
        counts = np.stack(
            [keep[:, c::n].sum(axis=1) for c in range(n)], axis=1
        )
        worst = counts.max(axis=1)
        unpruned = keep.sum(axis=1)
        softmax_tokens = -(-unpruned // n)
        softmax = softmax_tokens + -(-softmax_tokens // 2)
        compute = (
            worst * per_key * 2 + softmax + config.pipeline_overhead_cycles
        )
        memory = config.vector_fetch_cycles_array(2 * fetches) + timing.t_axth
        recorder = cls()
        for q in range(valid):
            recorder.events.append(
                QueryTraceEvent(
                    query=q,
                    unpruned=int(unpruned[q]),
                    fetched=int(fetches[q]),
                    reused=int(reuses[q]),
                    compute_cycles=int(compute[q]),
                    memory_cycles=int(memory[q]),
                )
            )
        return recorder

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return sum(e.latency_cycles for e in self.events)

    def bound_fractions(self) -> Dict[str, float]:
        """Fraction of queries bound by compute vs memory."""
        if not self.events:
            return {"compute": 0.0, "memory": 0.0}
        total = len(self.events)
        memory = sum(1 for e in self.events if e.bound == "memory")
        return {
            "memory": memory / total,
            "compute": (total - memory) / total,
        }

    def worst_queries(self, top: int = 5) -> List[QueryTraceEvent]:
        return sorted(
            self.events, key=lambda e: e.latency_cycles, reverse=True
        )[:top]

    def fetch_burstiness(self) -> float:
        """Coefficient of variation of per-query fetch counts.

        High burstiness means the SLD reuse concentrates traffic into
        few queries (the cold-start fetches) -- the prefetch-friendly
        pattern section VI relies on.
        """
        if not self.events:
            return 0.0
        fetches = np.array([e.fetched for e in self.events], dtype=float)
        mean = fetches.mean()
        return float(fetches.std() / mean) if mean > 0 else 0.0

    def reuse_fraction(self) -> float:
        fetched = sum(e.fetched for e in self.events)
        reused = sum(e.reused for e in self.events)
        total = fetched + reused
        return reused / total if total else 0.0

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialize the trace (for offline plotting)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            ["query", "unpruned", "fetched", "reused",
             "compute_cycles", "memory_cycles", "bound"]
        )
        for e in self.events:
            writer.writerow(
                [e.query, e.unpruned, e.fetched, e.reused,
                 e.compute_cycles, e.memory_cycles, e.bound]
            )
        return buffer.getvalue()

    def summary(self) -> str:
        bounds = self.bound_fractions()
        return (
            f"{len(self.events)} queries, {self.total_cycles:,} cycles, "
            f"reuse {self.reuse_fraction():.1%}, "
            f"memory-bound {bounds['memory']:.1%}, "
            f"fetch burstiness {self.fetch_burstiness():.2f}"
        )
