"""Batched, vectorized simulation core.

This module is the engine behind :class:`repro.core.system.SprintSystem`:
instead of walking a workload one sample (and one query) at a time in
Python, samples are stacked into a :class:`BatchedWorkload` and each
execution mode's :class:`ModeStrategy` computes per-query keep counts,
SLD fetch/reuse traffic, pipeline cycles, and energy event tallies for
the whole workload with array-level bookkeeping.

The layering is:

- :class:`BatchedWorkload` -- samples padded/stacked by sequence length
  into one ``(B, S, S)`` keep-mask tensor;
- :class:`BatchedKernel` -- the shared vectorized primitives (CORELET
  imbalance, pipeline cycles, SLD residency traffic, fetch latency);
- :class:`DenseStrategy` / :class:`PruningOnlyStrategy` /
  :class:`SprintStrategy` -- one strategy per :class:`ExecutionMode`,
  each producing per-sample :class:`~repro.core.results.HeadReport`\\ s
  that are bit-identical to the historical per-sample simulator.

Exactness is a hard contract *within this module*: every strategy
transcribes the per-sample arithmetic into elementwise array arithmetic
(identical IEEE operations in identical order), and the vectorized SLD
residency sweeps are provably equivalent to the retained query-by-query
LRU reference (``slow_exact=True``) -- see :func:`simulate_sld_traffic`.
One deliberate semantic change vs the pre-refactor simulator: LRU
eviction ties (equally-old vectors) used to be broken in unspecified
``np.argpartition`` order; they are now canonicalized to evict the
lowest key index first.  That makes residency well-defined (and
reproducible across numpy versions) but shifts SPRINT-mode fetch/reuse
counts, cycles, and energy by ~0.1-1% on some workloads relative to
pre-refactor outputs; the golden reports in ``tests/data/`` pin the
canonicalized semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configs import SprintConfig
from repro.core.results import HeadReport
from repro.energy.model import EnergyModel
from repro.memory.timing import DEFAULT_TIMING
from repro.workloads.generator import WorkloadSample


class ExecutionMode(enum.Enum):
    """The four evaluation scenarios of the paper."""

    BASELINE = "baseline"
    MASK_ONLY = "mask_only"
    PRUNING_ONLY = "pruning_only"
    SPRINT = "sprint"


# ----------------------------------------------------------------------
# SLD residency traffic
# ----------------------------------------------------------------------
def _sld_traffic_loop(
    keep: np.ndarray, capacity_vectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference query-by-query LRU walk (the ``slow_exact`` path).

    Eviction is least-recently-used with a deterministic tie-break:
    among equally-old vectors the lowest key index is evicted first
    (vectors needed by the current query are preferred survivors).
    """
    keep = np.asarray(keep, dtype=bool)
    num_queries, num_keys = keep.shape
    resident = np.zeros(num_keys, dtype=bool)
    last_use = np.full(num_keys, -1, dtype=np.int64)
    fetches = np.zeros(num_queries, dtype=np.int64)
    reuses = np.zeros(num_queries, dtype=np.int64)
    for t in range(num_queries):
        needed = keep[t]
        if not needed.any():
            continue
        hits = needed & resident
        misses = needed & ~resident
        fetches[t] = int(misses.sum())
        reuses[t] = int(hits.sum())
        last_use[needed] = t
        resident |= needed
        over = int(resident.sum()) - capacity_vectors
        if over > 0:
            res_idx = np.nonzero(resident)[0]
            # Prefer evicting vectors the current query does not need.
            cold = res_idx[~needed[res_idx]]
            pool = cold if cold.size >= over else res_idx
            order = np.argsort(last_use[pool], kind="stable")[:over]
            resident[pool[order]] = False
    return fetches, reuses


#: ``_LOW_SET_BITS[m, r]`` masks the ``r`` least-significant set bits of
#: byte ``m`` -- the boundary-group survivors inside one packed byte
#: (``np.packbits`` is big-endian, so higher key indices sit toward the
#: least-significant bits).
_LOW_SET_BITS = np.zeros((256, 9), dtype=np.uint8)
for _m in range(256):
    _mask = 0
    _r = 0
    for _bit in range(8):  # LSB upward = highest key index first
        if _m & (1 << _bit):
            _r += 1
            _mask |= 1 << _bit
        _LOW_SET_BITS[_m, _r:] = _mask
del _m, _mask, _r, _bit

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _sld_traffic_packed(
    keep: np.ndarray, capacity_vectors: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Bit-packed residency sweep (the fast path).

    Works on the closed form of the LRU buffer (see
    :func:`_sld_traffic_rank`): the resident set before query ``t`` is
    the union of the last ``w*`` queries' keys plus the highest-index
    remainder of the query just before that window, where ``w*[t]`` is
    the largest window whose distinct-key count fits capacity.  With
    keep masks packed to bits, window unions are byte ORs, distinct
    counts are popcounts, and the boundary-query survivors reduce to a
    256-entry byte mask table -- so the expected cost is a few packed
    passes instead of O(queries x keys) integer scans.

    ``w*`` is found by scanning window sizes upward; pathological
    regimes (capacity so large the window never fills) return ``None``
    so the caller can fall back to the histogram-ranking sweep.
    """
    keep = np.asarray(keep, dtype=bool)
    num_queries, num_keys = keep.shape
    fetches = keep.sum(axis=1).astype(np.int64)
    reuses = np.zeros(num_queries, dtype=np.int64)
    if num_queries <= 1 or num_keys == 0 or capacity_vectors <= 0:
        return fetches, reuses
    packed = np.packbits(keep, axis=1)
    row_ids = np.arange(num_queries, dtype=np.int64)
    # -- scan window sizes upward for w*[t]: the largest w such that
    #    the keys of queries [t-w, t) number at most `capacity`.
    w_star = np.full(num_queries, -1, dtype=np.int64)
    unresolved = np.ones(num_queries, dtype=bool)
    w_star[0] = 0  # query 0 has an empty history: nothing resident
    unresolved[0] = False
    window_or = np.zeros_like(packed)  # OR of rows [t-w, t), w = 0
    or_levels = [window_or]
    distinct_levels = [np.zeros(num_queries, dtype=np.int64)]
    w = 0
    max_window = min(num_queries, 64)
    while unresolved.any() and w < max_window:
        w += 1
        window_or = window_or.copy()
        window_or[w:] |= packed[: num_queries - w]
        distinct = np.bitwise_count(window_or).sum(
            axis=1, dtype=np.int64
        )
        or_levels.append(window_or)
        distinct_levels.append(distinct)
        exceeded = unresolved & (distinct > capacity_vectors)
        w_star[exceeded] = w - 1
        unresolved &= ~exceeded
        saturated = unresolved & (row_ids == w)  # full history fits
        w_star[saturated] = w
        unresolved &= ~saturated
    if unresolved.any():
        return None  # window never filled; use the histogram sweep
    # -- per-row window union / distinct count at w*[t]
    or_stack = np.stack(or_levels)
    window_at = or_stack[w_star, row_ids]
    distinct_at = np.stack(distinct_levels)[w_star, row_ids]
    avail = capacity_vectors - distinct_at
    # Keys used inside the window are unconditionally resident.
    reuses = np.bitwise_count(packed & window_at).sum(axis=1, dtype=np.int64)
    # The query just before the window (the boundary query) keeps only
    # its `avail` highest-index keys not already inside the window.
    boundary_row = row_ids - w_star - 1
    has_boundary = boundary_row >= 0
    members = np.zeros_like(packed)
    members[has_boundary] = (
        packed[boundary_row[has_boundary]] & ~window_at[has_boundary]
    )
    member_counts = np.bitwise_count(members).astype(np.int64)
    after = member_counts[:, ::-1].cumsum(axis=1)[:, ::-1] - member_counts
    slots = np.clip(avail[:, None] - after, 0, 8)
    survivors = _LOW_SET_BITS[members, slots]
    reuses += np.bitwise_count(packed & survivors).sum(axis=1, dtype=np.int64)
    return fetches - reuses, reuses


def _sld_traffic_rank(
    keep: np.ndarray, capacity_vectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram-ranking residency sweep (general vectorized fallback).

    The LRU-with-index-tie-break buffer admits a closed form: trimming
    the residency set to capacity at every step under the total order
    ``(last_use, key_index)`` leaves exactly the top-``capacity`` keys
    of that order resident.  So key ``k`` is a reuse at query ``t`` iff
    it was used before ``t`` and fewer than ``capacity`` keys rank above
    it by ``(last use strictly before t, key index)``.

    The rank test needs no sorting: a per-row histogram of last-use
    times gives ``#{keys used more recently}`` by suffix-summing, and
    the index tie-break only matters inside the single last-use value
    group that straddles the capacity boundary, where a reverse cumsum
    yields each key's within-group rank (higher indices survive).  The
    whole sweep is a fixed number of O(queries x keys) elementwise /
    cumsum passes with no sequential Python loop.
    """
    keep = np.asarray(keep, dtype=bool)
    num_queries, num_keys = keep.shape
    fetches = keep.sum(axis=1).astype(np.int64)
    reuses = np.zeros(num_queries, dtype=np.int64)
    if num_queries <= 1 or num_keys == 0 or capacity_vectors <= 0:
        return fetches, reuses
    age_dtype = np.int16 if num_queries < 2 ** 15 else np.int64
    # age[t, j] = 1 + most recent query < t that needed key j (0: never).
    rows = np.arange(1, num_queries + 1, dtype=age_dtype)[:, None]
    use_time = keep * rows
    age = np.zeros((num_queries, num_keys), dtype=age_dtype)
    np.maximum.accumulate(use_time[:-1], axis=0, out=age[1:])
    # Per-row age histogram and suffix counts G[t, v] = #{j: age >= v}.
    offsets = np.arange(num_queries, dtype=np.int64) * (num_queries + 1)
    hist = np.bincount(
        np.add(age, offsets[:, None]).ravel(),
        minlength=num_queries * (num_queries + 1),
    ).reshape(num_queries, num_queries + 1)
    newer = hist[:, ::-1].cumsum(axis=1)[:, ::-1]
    # Whole age groups are decisively resident or evicted: the smallest
    # age with G <= capacity marks the fully-resident region (G is
    # non-increasing in v, and G[t, num_queries] == 0, so it exists).
    full_age = (newer <= capacity_vectors).argmax(axis=1)
    # Never-used keys (age 0) are not resident even when the buffer has
    # room for everything, so the resident threshold is at least age 1.
    resident_age = np.maximum(full_age, 1).astype(age_dtype)[:, None]
    reuses = np.count_nonzero(keep & (age >= resident_age), axis=1).astype(
        np.int64
    )
    # The one group per row straddling the capacity boundary additionally
    # keeps its `capacity - G[t, full_age]` highest key indices.
    avail = capacity_vectors - np.take_along_axis(
        newer, full_age[:, None], axis=1
    )
    boundary = age == (resident_age - 1)
    ties = np.cumsum(boundary, axis=1, dtype=np.int32)  # {j <= k} ties
    group_size = ties[:, -1:]
    # ties-from-the-right = group_size - ties + 1 for a member; survivors
    # are members with at most `avail` group keys at an index >= theirs.
    # Rows with resident_age == 1 have the never-used keys (age 0) as
    # their "boundary" group, which is never resident: gate them out.
    hit_boundary = (
        keep
        & boundary
        & (group_size - ties + 1 <= avail)
        & (resident_age > 1)
    )
    reuses += np.count_nonzero(hit_boundary, axis=1)
    return fetches - reuses, reuses


def simulate_sld_traffic(
    keep_mask: np.ndarray,
    capacity_vectors: int,
    slow_exact: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-query (fetch, reuse) vector counts under LRU residency.

    Each query's unpruned keys are either resident (reuse, Eq. 5) or
    fetched (Eq. 4); the buffer evicts least-recently-used vectors
    beyond ``capacity_vectors``, lowest key index first among ties.
    Exactly the SLD-engine behaviour with a capacity-aware residency
    set.

    Parameters
    ----------
    keep_mask:
        Boolean ``(queries, keys)`` keep mask.
    capacity_vectors:
        K (equivalently V) buffer capacity in vectors.
    slow_exact:
        ``True`` runs the retained query-by-query LRU reference loop
        instead of the vectorized residency sweep.  All paths return
        identical counts; the loop exists as the executable
        specification the sweeps are tested against.
    """
    if slow_exact:
        return _sld_traffic_loop(keep_mask, capacity_vectors)
    if _HAS_BITWISE_COUNT:
        result = _sld_traffic_packed(keep_mask, capacity_vectors)
        if result is not None:
            return result
    return _sld_traffic_rank(keep_mask, capacity_vectors)


# ----------------------------------------------------------------------
# batched workload view
# ----------------------------------------------------------------------
@dataclass
class BatchedWorkload:
    """Samples of equal ``seq_len`` stacked into one mask tensor.

    Attributes
    ----------
    keep:
        Boolean ``(B, S, S)``; padded rows/columns are ``False``.
    valid_len:
        ``(B,)`` non-padded token counts.
    causal:
        ``(B,)`` causal flags (drives the mask-aware dense reduction).
    seq_len:
        The shared model sequence length ``S``.
    """

    keep: np.ndarray
    valid_len: np.ndarray
    causal: np.ndarray
    seq_len: int

    @classmethod
    def from_samples(cls, samples: Sequence[WorkloadSample]) -> "BatchedWorkload":
        if not samples:
            raise ValueError("at least one sample required")
        seq_lens = {s.seq_len for s in samples}
        if len(seq_lens) != 1:
            raise ValueError(
                f"samples must share seq_len; got {sorted(seq_lens)}"
            )
        return cls(
            keep=np.stack([np.asarray(s.keep_mask, dtype=bool) for s in samples]),
            valid_len=np.array([s.valid_len for s in samples], dtype=np.int64),
            causal=np.array([s.causal for s in samples], dtype=bool),
            seq_len=seq_lens.pop(),
        )

    def __len__(self) -> int:
        return self.keep.shape[0]


# ----------------------------------------------------------------------
# shared vectorized primitives
# ----------------------------------------------------------------------
class BatchedKernel:
    """Vectorized primitives shared by the mode strategies.

    Holds the hardware configuration, memory timing, and the two
    ablation knobs; every method operates on whole-batch arrays.
    """

    def __init__(
        self,
        config: SprintConfig,
        timing=DEFAULT_TIMING,
        enable_sld: bool = True,
        enable_interleaving: bool = True,
        sld_slow_exact: bool = False,
    ):
        self.config = config
        self.timing = timing
        self.enable_sld = enable_sld
        self.enable_interleaving = enable_interleaving
        self.sld_slow_exact = sld_slow_exact

    # -- CORELET imbalance ---------------------------------------------
    def per_corelet_worst(
        self, keep: np.ndarray, num_cols: np.ndarray = None
    ) -> np.ndarray:
        """Per-query worst-case unpruned tokens on any CORELET, ``(B, S)``.

        ``num_cols`` gives each sample's mapped key count (its valid
        length); it only matters for the sequential-block ablation,
        where block boundaries depend on the mapped width.  Token
        interleaving is width-agnostic because padded columns are all
        ``False``.
        """
        n = self.config.num_corelets
        batch, _, keys = keep.shape
        if self.enable_interleaving:
            counts = np.stack(
                [keep[:, :, c::n].sum(axis=2) for c in range(n)], axis=2
            )
            return counts.max(axis=2)
        widths = (
            np.full(batch, keys, dtype=np.int64)
            if num_cols is None
            else np.asarray(num_cols, dtype=np.int64)
        )
        out = np.zeros(keep.shape[:2], dtype=np.int64)
        for i in range(batch):
            block = -(-int(widths[i]) // n)
            counts = np.stack(
                [
                    keep[i, :, c * block : (c + 1) * block].sum(axis=1)
                    for c in range(n)
                ],
                axis=1,
            )
            out[i] = counts.max(axis=1)
        return out

    # -- cycle model ----------------------------------------------------
    def pipeline_cycles(
        self, worst_tokens: np.ndarray, row_totals: np.ndarray
    ) -> np.ndarray:
        """Per-query compute cycles for QK -> Softmax -> V (elementwise)."""
        cfg = self.config
        per_key = -(-cfg.head_dim // cfg.mac_taps)
        n = cfg.num_corelets
        softmax_tokens = -(-row_totals // n)
        softmax = softmax_tokens + -(-softmax_tokens // 2)  # 2 dividers
        return (
            worst_tokens * per_key * 2 + softmax + cfg.pipeline_overhead_cycles
        )

    def fetch_cycles(self, vectors: np.ndarray) -> np.ndarray:
        """Memory-channel cycles to move per-query vector counts."""
        return self.config.vector_fetch_cycles_array(vectors)

    # -- SLD traffic ----------------------------------------------------
    def sld_traffic(
        self, batch: BatchedWorkload
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample, per-query (fetch, reuse) counts, each ``(B, S)``.

        Queries beyond a sample's valid length contribute zeros.  The
        residency sweep runs per sample (its output depends on that
        sample's full mask history) but is internally loop-free.
        """
        capacity = self.config.kv_capacity_vectors
        fetches = np.zeros(batch.keep.shape[:2], dtype=np.int64)
        reuses = np.zeros_like(fetches)
        for i in range(len(batch)):
            valid = int(batch.valid_len[i])
            f, r = simulate_sld_traffic(
                batch.keep[i, :valid, :valid],
                capacity,
                slow_exact=self.sld_slow_exact,
            )
            fetches[i, :valid] = f
            reuses[i, :valid] = r
        return fetches, reuses


# ----------------------------------------------------------------------
# mode strategies
# ----------------------------------------------------------------------
class ModeStrategy:
    """One execution mode's batched event/cycle/energy accounting."""

    mode: ExecutionMode

    def simulate_batch(
        self, kernel: BatchedKernel, batch: BatchedWorkload
    ) -> List[HeadReport]:
        """Per-sample head reports, in batch order."""
        raise NotImplementedError


class DenseStrategy(ModeStrategy):
    """BASELINE / MASK_ONLY: no pruning; optional 2-D sequence reduction.

    Dense cost depends only on the effective sequence length and the
    causal flag, never on the mask contents, so identical samples share
    one report computation.
    """

    def __init__(self, mask_aware: bool):
        self.mask_aware = mask_aware
        self.mode = (
            ExecutionMode.MASK_ONLY if mask_aware else ExecutionMode.BASELINE
        )

    def simulate_batch(
        self, kernel: BatchedKernel, batch: BatchedWorkload
    ) -> List[HeadReport]:
        cache: Dict[Tuple[int, bool], HeadReport] = {}
        reports = []
        for i in range(len(batch)):
            s = int(batch.valid_len[i]) if self.mask_aware else batch.seq_len
            causal = self.mask_aware and bool(batch.causal[i])
            key = (s, causal)
            if key not in cache:
                cache[key] = self._dense_report(kernel, s, causal)
            reports.append(cache[key])
        return reports

    def _dense_report(
        self, kernel: BatchedKernel, s: int, causal: bool
    ) -> HeadReport:
        cfg = kernel.config
        capacity = cfg.kv_capacity_vectors
        resident = min(capacity, s)
        # Per-query key counts: dense unless the mask-aware config can
        # exploit a static causal mask (two-dimensional reduction).
        if causal:
            keys_per_query = np.arange(1, s + 1, dtype=np.int64)
        else:
            keys_per_query = np.full(s, s, dtype=np.int64)
        streamed_per_query = np.maximum(keys_per_query - resident, 0)
        key_fetches = int(streamed_per_query.sum()) + resident
        value_fetches = int(streamed_per_query.sum()) + resident
        query_fetches = s
        qk = int(keys_per_query.sum())
        energy = EnergyModel(vector_bytes=cfg.vector_bytes)
        energy.count_reram_vector_reads(
            key_fetches + value_fetches + query_fetches
        )
        energy.count_reram_vector_writes(3 * s)
        energy.count_buffer_vector_reads(2 * qk)
        energy.count_buffer_vector_writes(key_fetches + value_fetches)
        energy.count_qk_dot_products(qk)
        energy.count_softmax_elements(qk)
        energy.count_v_mac_rows(qk)
        # Cycles: every query scores its keys; fetches overlap compute.
        # Dense per-CORELET load is the even split ceil(keys/n), so the
        # shared pipeline model applies with row totals = key counts.
        worst = -(-keys_per_query // cfg.num_corelets)
        compute = kernel.pipeline_cycles(worst, keys_per_query)
        memory = kernel.fetch_cycles(2 * streamed_per_query)
        cycles = int(np.maximum(compute, memory).sum())
        counts = {
            "key_fetches": float(key_fetches),
            "value_fetches": float(value_fetches),
            "query_fetches": float(query_fetches),
            "reram_writes": float(3 * s),
            "qk_dot_products": float(qk),
            "softmax_elements": float(qk),
            "v_mac_rows": float(qk),
            "unpruned_total": float(qk),
            "queries": float(s),
        }
        return HeadReport(
            mode=self.mode.value, cycles=cycles,
            energy=energy.breakdown, counts=counts,
        )


class PruningOnlyStrategy(ModeStrategy):
    """On-chip learned runtime pruning without in-memory support.

    Every key still streams on chip and every Q.K dot product happens,
    but Softmax and the V pipeline run only on the unpruned subset.
    """

    mode = ExecutionMode.PRUNING_ONLY

    def simulate_batch(
        self, kernel: BatchedKernel, batch: BatchedWorkload
    ) -> List[HeadReport]:
        cfg = kernel.config
        keep = batch.keep
        s = batch.seq_len
        capacity = cfg.kv_capacity_vectors
        resident = min(capacity, s)
        streamed = s - resident
        # Every key still streams on chip for the full Q.K computation.
        key_fetches = s * streamed + resident
        query_fetches = s
        # Values fetch only when unpruned and outside the pinned region.
        v_fetch_per_query = keep[:, :, resident:].sum(axis=2)
        value_fetches = v_fetch_per_query.sum(axis=1) + resident
        unpruned = keep.sum(axis=2)
        total_unpruned = unpruned.sum(axis=1)
        qk = s * s
        energy = EnergyModel(vector_bytes=cfg.vector_bytes)
        energy.count_reram_vector_reads(
            key_fetches + value_fetches + query_fetches
        )
        energy.count_reram_vector_writes(3 * s)
        energy.count_buffer_vector_reads(qk + total_unpruned)
        energy.count_buffer_vector_writes(key_fetches + value_fetches)
        energy.count_qk_dot_products(qk)
        energy.count_softmax_elements(total_unpruned)
        energy.count_v_mac_rows(total_unpruned)
        per_key = -(-cfg.head_dim // cfg.mac_taps)
        worst_qk = -(-s // cfg.num_corelets)
        worst_v = kernel.per_corelet_worst(keep)
        softmax_tokens = -(-unpruned // cfg.num_corelets)
        softmax = softmax_tokens + -(-softmax_tokens // 2)
        compute = (
            worst_qk * per_key + softmax + worst_v * per_key
            + cfg.pipeline_overhead_cycles
        )
        memory = kernel.fetch_cycles(streamed + v_fetch_per_query)
        cycles = np.maximum(compute, memory).sum(axis=1)
        breakdowns = energy.breakdown.split()
        reports = []
        for i in range(len(batch)):
            counts = {
                "key_fetches": float(key_fetches),
                "value_fetches": float(value_fetches[i]),
                "query_fetches": float(query_fetches),
                "reram_writes": float(3 * s),
                "qk_dot_products": float(qk),
                "softmax_elements": float(total_unpruned[i]),
                "v_mac_rows": float(total_unpruned[i]),
                "unpruned_total": float(total_unpruned[i]),
                "queries": float(s),
            }
            reports.append(
                HeadReport(
                    mode=self.mode.value, cycles=int(cycles[i]),
                    energy=breakdowns[i], counts=counts,
                )
            )
        return reports


class SprintStrategy(ModeStrategy):
    """SPRINT: in-memory thresholding + SLD delta fetches + recompute."""

    mode = ExecutionMode.SPRINT

    def simulate_batch(
        self, kernel: BatchedKernel, batch: BatchedWorkload
    ) -> List[HeadReport]:
        cfg = kernel.config
        keep = batch.keep
        valid = batch.valid_len
        if kernel.enable_sld:
            fetches, reuses = kernel.sld_traffic(batch)
        else:
            # Ablation: no locality reuse -- every unpruned vector is a
            # fresh fetch for every query.
            fetches = keep.sum(axis=2)
            reuses = np.zeros_like(fetches)
        unpruned = keep.sum(axis=2)
        total_unpruned = unpruned.sum(axis=1)
        total_fetches = fetches.sum(axis=1)
        key_fetches = total_fetches
        value_fetches = total_fetches  # pruning vectors identical for K/V
        query_fetches = valid
        # In-memory thresholding events: one analog pass per column tile
        # per row tile per query, comparators across the valid columns.
        rows, cols = cfg.transposable_array
        col_tiles = -(-valid // cols)
        row_tiles = -(-cfg.head_dim // rows)
        array_ops = valid * col_tiles * row_tiles
        comparator_ops = valid * valid
        energy = EnergyModel(vector_bytes=cfg.vector_bytes)
        energy.count_reram_vector_reads(
            key_fetches + value_fetches + query_fetches
        )
        energy.count_reram_vector_writes(3 * valid)
        energy.count_inmemory_array_ops(array_ops)
        energy.count_comparator_ops(comparator_ops)
        energy.count_buffer_vector_reads(2 * total_unpruned)
        energy.count_buffer_vector_writes(key_fetches + value_fetches)
        energy.count_qk_dot_products(total_unpruned)
        energy.count_softmax_elements(total_unpruned)
        energy.count_v_mac_rows(total_unpruned)
        worst = kernel.per_corelet_worst(keep, num_cols=valid)
        compute = kernel.pipeline_cycles(worst, unpruned)
        memory = kernel.fetch_cycles(2 * fetches) + kernel.timing.t_axth
        in_valid = (
            np.arange(batch.seq_len, dtype=np.int64)[None, :] < valid[:, None]
        )
        cycles = np.where(in_valid, np.maximum(compute, memory), 0).sum(axis=1)
        sld_reuses = reuses.sum(axis=1)
        breakdowns = energy.breakdown.split()
        reports = []
        for i in range(len(batch)):
            counts = {
                "key_fetches": float(total_fetches[i]),
                "value_fetches": float(total_fetches[i]),
                "query_fetches": float(valid[i]),
                "reram_writes": float(3 * valid[i]),
                "qk_dot_products": float(total_unpruned[i]),
                "softmax_elements": float(total_unpruned[i]),
                "v_mac_rows": float(total_unpruned[i]),
                "unpruned_total": float(total_unpruned[i]),
                "inmemory_array_ops": float(array_ops[i]),
                "comparator_ops": float(comparator_ops[i]),
                "sld_reuses": float(sld_reuses[i]),
                "queries": float(valid[i]),
            }
            reports.append(
                HeadReport(
                    mode=self.mode.value, cycles=int(cycles[i]),
                    energy=breakdowns[i], counts=counts,
                )
            )
        return reports


_STRATEGIES: Dict[ExecutionMode, ModeStrategy] = {
    ExecutionMode.BASELINE: DenseStrategy(mask_aware=False),
    ExecutionMode.MASK_ONLY: DenseStrategy(mask_aware=True),
    ExecutionMode.PRUNING_ONLY: PruningOnlyStrategy(),
    ExecutionMode.SPRINT: SprintStrategy(),
}


def strategy_for(mode: ExecutionMode) -> ModeStrategy:
    """The (stateless, shared) strategy instance for ``mode``."""
    try:
        return _STRATEGIES[mode]
    except (KeyError, TypeError):
        raise ValueError(f"unknown mode {mode!r}") from None
