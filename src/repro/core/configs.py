"""Hardware configurations of Table I (S-/M-/L-SPRINT).

All three share the memory system (16 x 64-bit channels @ 1 GHz per
CORELET, 256x128 standard ReRAM bitcells, 64x128 transposable arrays
with 4-bit MLC) and scale the on-chip side: CORELET count, K/V buffer
capacity, processing units, and the query/index buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Per-query pipeline fill/drain cycles (score FIFO, normalization hand-
#: off between QK-PU, Softmax, and V-PU stages).  Single source of truth
#: for both the cycle model and the per-query tracer.
PIPELINE_OVERHEAD_CYCLES = 24


@dataclass(frozen=True)
class SprintConfig:
    """One column of Table I."""

    name: str
    num_corelets: int
    onchip_cache_kb: int  # total K/V buffer capacity
    num_qkpu: int
    num_vpu: int
    num_softmax: int
    query_buffer_bytes: int
    index_buffer_bytes: int
    # Shared memory-system parameters.
    channels: int = 16
    channel_bits: int = 64
    frequency_ghz: float = 1.0
    standard_array: tuple = (256, 128)
    transposable_array: tuple = (64, 128)
    mlc_bits: int = 4
    head_dim: int = 64
    mac_taps: int = 64
    #: Per-query pipeline fill/drain cycles shared by the cycle model
    #: (:mod:`repro.core.batched`) and the tracer (:mod:`repro.core.trace`).
    pipeline_overhead_cycles: int = PIPELINE_OVERHEAD_CYCLES

    @property
    def vector_bytes(self) -> int:
        """Bytes per 8-bit embedding vector (d elements)."""
        return self.head_dim

    @property
    def k_buffer_bytes(self) -> int:
        """Half the on-chip cache holds keys, half values."""
        return self.onchip_cache_kb * 1024 // 2

    @property
    def v_buffer_bytes(self) -> int:
        return self.onchip_cache_kb * 1024 // 2

    @property
    def kv_capacity_vectors(self) -> int:
        """Key vectors the K buffer holds (V is symmetric)."""
        return self.k_buffer_bytes // self.vector_bytes

    @property
    def sram_banks(self) -> int:
        """8/16/32 banks for 16/32/64 KB (Table I)."""
        return self.onchip_cache_kb // 2

    def vector_fetch_cycles(self, vectors: int) -> int:
        """Cycles to move ``vectors`` embedding vectors over the channels.

        One vector is ``vector_bytes`` over a ``channel_bits``-wide bus;
        adjacent vectors ride different channels (section V-A layout).
        """
        if vectors <= 0:
            return 0
        per_vector = -(-self.vector_bytes * 8 // self.channel_bits)
        waves = -(-vectors // self.channels)
        return waves * per_vector

    def vector_fetch_cycles_array(self, vectors: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`vector_fetch_cycles` over an integer array.

        Element-for-element identical to the scalar method; used by the
        batched simulation core so per-query memory latency stops being
        N scalar calls.
        """
        vectors = np.asarray(vectors, dtype=np.int64)
        per_vector = -(-self.vector_bytes * 8 // self.channel_bits)
        waves = -(-vectors // self.channels)
        return np.where(vectors > 0, waves * per_vector, 0)


S_SPRINT = SprintConfig(
    name="S-SPRINT", num_corelets=1, onchip_cache_kb=16,
    num_qkpu=1, num_vpu=1, num_softmax=1,
    query_buffer_bytes=64, index_buffer_bytes=512,
)

M_SPRINT = SprintConfig(
    name="M-SPRINT", num_corelets=2, onchip_cache_kb=32,
    num_qkpu=2, num_vpu=2, num_softmax=2,
    query_buffer_bytes=128, index_buffer_bytes=1024,
)

L_SPRINT = SprintConfig(
    name="L-SPRINT", num_corelets=4, onchip_cache_kb=64,
    num_qkpu=4, num_vpu=4, num_softmax=4,
    query_buffer_bytes=256, index_buffer_bytes=2048,
)

SPRINT_CONFIGS = {c.name: c for c in (S_SPRINT, M_SPRINT, L_SPRINT)}

#: Baselines share the exact config (iso-setup, section VII) minus the
#: SPRINT features; experiments name them e.g. "S-Baseline".
BASELINE_SUFFIX = "-Baseline"


def get_config(name: str) -> SprintConfig:
    """Look up a configuration by name ('S-SPRINT', 'M-SPRINT', ...)."""
    if name in SPRINT_CONFIGS:
        return SPRINT_CONFIGS[name]
    short = {"S": S_SPRINT, "M": M_SPRINT, "L": L_SPRINT}
    if name.upper() in short:
        return short[name.upper()]
    raise KeyError(f"unknown config {name!r}")
