"""Simulation result containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.model import EnergyBreakdown


@dataclass
class HeadReport:
    """Events, cycles, and energy for one attention head on one input."""

    mode: str
    cycles: int = 0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    counts: Dict[str, float] = field(default_factory=dict)

    @property
    def main_memory_vector_reads(self) -> float:
        return (
            self.counts.get("key_fetches", 0.0)
            + self.counts.get("value_fetches", 0.0)
            + self.counts.get("query_fetches", 0.0)
        )

    def data_movement_bytes(self, vector_bytes: int = 64) -> float:
        """Main-memory -> processor traffic (Figure 10 metric)."""
        return self.main_memory_vector_reads * vector_bytes


@dataclass
class SimulationReport:
    """Mean over a workload's samples for one (model, config, mode)."""

    model: str
    config: str
    mode: str
    cycles: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    counts: Dict[str, float] = field(default_factory=dict)
    samples: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_heads(
        cls, model: str, config: str, mode: str, heads
    ) -> "SimulationReport":
        heads = list(heads)
        if not heads:
            raise ValueError("at least one head report required")
        n = len(heads)
        energy = EnergyBreakdown()
        counts: Dict[str, float] = {}
        cycles = 0.0
        for h in heads:
            cycles += h.cycles
            energy = energy.merged(h.energy)
            for k, v in h.counts.items():
                counts[k] = counts.get(k, 0.0) + v
        return cls(
            model=model,
            config=config,
            mode=mode,
            cycles=cycles / n,
            energy=energy.scaled(1.0 / n),
            counts={k: v / n for k, v in counts.items()},
            samples=n,
        )

    # ------------------------------------------------------------------
    @property
    def total_energy_pj(self) -> float:
        return self.energy.total_pj

    def data_movement_bytes(self, vector_bytes: int = 64) -> float:
        reads = (
            self.counts.get("key_fetches", 0.0)
            + self.counts.get("value_fetches", 0.0)
            + self.counts.get("query_fetches", 0.0)
        )
        return reads * vector_bytes

    def speedup_vs(self, baseline: "SimulationReport") -> float:
        if self.cycles <= 0:
            return float("inf")
        return baseline.cycles / self.cycles

    def energy_reduction_vs(self, baseline: "SimulationReport") -> float:
        if self.total_energy_pj <= 0:
            return float("inf")
        return baseline.total_energy_pj / self.total_energy_pj

    def data_movement_reduction_vs(
        self, baseline: "SimulationReport", vector_bytes: int = 64
    ) -> float:
        base = baseline.data_movement_bytes(vector_bytes)
        if base <= 0:
            return 0.0
        return 1.0 - self.data_movement_bytes(vector_bytes) / base

    def describe(self) -> str:
        lines = [
            f"{self.model} / {self.config} / {self.mode}:",
            f"  cycles            : {self.cycles:,.0f}",
            f"  energy            : {self.total_energy_pj / 1e6:,.3f} uJ",
            f"  memory fraction   : {self.energy.memory_fraction():.1%}",
            f"  data movement     : {self.data_movement_bytes() / 1024:,.1f} KiB",
        ]
        return "\n".join(lines)
