"""The SPRINT system simulator (event-count + cycle model, section VII).

Simulates one attention head's execution per input sample under four
execution modes and produces event counts, a Figure 13-style energy
breakdown, and a latency estimate:

- ``BASELINE``     -- iso-resource design, no pruning, no mask filtering;
- ``MASK_ONLY``    -- baseline plus two-dimensional sequence reduction;
- ``PRUNING_ONLY`` -- on-chip learned runtime pruning (LeOPArd-style):
  every key still streams on chip and every Q.K dot product happens, but
  Softmax and the V pipeline run only on the unpruned subset;
- ``SPRINT``       -- in-memory thresholding + SLD-driven delta fetches +
  on-chip recompute + two-dimensional sequence reduction.

The cycle model follows the paper's performance simulator: per-query
latency is the worst case across CORELETs of the pipelined
QK -> Softmax -> V work, overlapped with the memory system's delta
fetches (prefetched by the controller), with ``tAxTh`` charged for the
in-memory thresholding handshake.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.configs import SprintConfig
from repro.core.results import HeadReport, SimulationReport
from repro.energy.model import EnergyModel
from repro.memory.timing import DEFAULT_TIMING
from repro.models.zoo import ModelSpec
from repro.workloads.generator import Workload, WorkloadSample, generate_workload


class ExecutionMode(enum.Enum):
    """The four evaluation scenarios of the paper."""

    BASELINE = "baseline"
    MASK_ONLY = "mask_only"
    PRUNING_ONLY = "pruning_only"
    SPRINT = "sprint"


#: Per-query pipeline fill/drain cycles (score FIFO, normalization hand-
#: off between QK-PU, Softmax, and V-PU stages).
PIPELINE_OVERHEAD_CYCLES = 24


def simulate_sld_traffic(
    keep_mask: np.ndarray, capacity_vectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-query (fetch, reuse) vector counts under LRU residency.

    Walks queries in order; each query's unpruned keys are either
    resident (reuse, Eq. 5) or fetched (Eq. 4), and the buffer evicts
    least-recently-used vectors beyond ``capacity_vectors``.  Exactly the
    SLD-engine behaviour with a capacity-aware residency set.
    """
    keep = np.asarray(keep_mask, dtype=bool)
    num_queries, num_keys = keep.shape
    resident = np.zeros(num_keys, dtype=bool)
    last_use = np.full(num_keys, -1, dtype=np.int64)
    fetches = np.zeros(num_queries, dtype=np.int64)
    reuses = np.zeros(num_queries, dtype=np.int64)
    for t in range(num_queries):
        needed = keep[t]
        if not needed.any():
            continue
        hits = needed & resident
        misses = needed & ~resident
        fetches[t] = int(misses.sum())
        reuses[t] = int(hits.sum())
        last_use[needed] = t
        resident |= needed
        over = int(resident.sum()) - capacity_vectors
        if over > 0:
            res_idx = np.nonzero(resident)[0]
            # Prefer evicting vectors the current query does not need.
            cold = res_idx[~needed[res_idx]]
            pool = cold if cold.size >= over else res_idx
            order = np.argpartition(last_use[pool], over - 1)[:over]
            resident[pool[order]] = False
    return fetches, reuses


class SprintSystem:
    """Simulate a :class:`SprintConfig` over calibrated workloads.

    Parameters
    ----------
    config:
        Hardware configuration (Table I).
    timing:
        Memory timing table (tAxTh etc.).
    enable_sld:
        Ablation knob: ``False`` disables the Spatial Locality Detection
        reuse, so every unpruned key/value is re-fetched per query.
    enable_interleaving:
        Ablation knob: ``False`` maps keys to CORELETs in sequential
        blocks instead of token interleaving (Figure 8's comparison).
    """

    def __init__(
        self,
        config: SprintConfig,
        timing=DEFAULT_TIMING,
        enable_sld: bool = True,
        enable_interleaving: bool = True,
    ):
        self.config = config
        self.timing = timing
        self.enable_sld = enable_sld
        self.enable_interleaving = enable_interleaving

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _per_corelet_worst(self, keep: np.ndarray) -> np.ndarray:
        """Per-query worst-case unpruned tokens on any CORELET."""
        n = self.config.num_corelets
        if self.enable_interleaving:
            counts = np.stack(
                [keep[:, c::n].sum(axis=1) for c in range(n)], axis=1
            )
        else:
            block = -(-keep.shape[1] // n)
            counts = np.stack(
                [
                    keep[:, c * block : (c + 1) * block].sum(axis=1)
                    for c in range(n)
                ],
                axis=1,
            )
        return counts.max(axis=1)

    def _pipeline_cycles(
        self, worst_tokens: np.ndarray, row_totals: np.ndarray
    ) -> np.ndarray:
        """Per-query compute cycles for QK -> Softmax -> V."""
        per_key = -(-self.config.head_dim // self.config.mac_taps)
        n = self.config.num_corelets
        softmax_tokens = -(-row_totals // n)
        softmax = softmax_tokens + -(-softmax_tokens // 2)  # 2 dividers
        return (
            worst_tokens * per_key * 2 + softmax + PIPELINE_OVERHEAD_CYCLES
        )

    # ------------------------------------------------------------------
    # per-sample simulation
    # ------------------------------------------------------------------
    def simulate_sample(
        self, sample: WorkloadSample, mode: ExecutionMode
    ) -> HeadReport:
        """Simulate one attention head on one input sample."""
        if mode == ExecutionMode.BASELINE:
            return self._simulate_dense(sample, mask_aware=False)
        if mode == ExecutionMode.MASK_ONLY:
            return self._simulate_dense(sample, mask_aware=True)
        if mode == ExecutionMode.PRUNING_ONLY:
            return self._simulate_pruning_only(sample)
        if mode == ExecutionMode.SPRINT:
            return self._simulate_sprint(sample)
        raise ValueError(f"unknown mode {mode!r}")

    # -- baseline / mask-only ------------------------------------------
    def _simulate_dense(
        self, sample: WorkloadSample, mask_aware: bool
    ) -> HeadReport:
        cfg = self.config
        s = sample.valid_len if mask_aware else sample.seq_len
        capacity = cfg.kv_capacity_vectors
        resident = min(capacity, s)
        # Per-query key counts: dense unless the mask-aware config can
        # exploit a static causal mask (two-dimensional reduction).
        if mask_aware and sample.causal:
            keys_per_query = np.arange(1, s + 1, dtype=np.int64)
        else:
            keys_per_query = np.full(s, s, dtype=np.int64)
        streamed_per_query = np.maximum(keys_per_query - resident, 0)
        key_fetches = int(streamed_per_query.sum()) + resident
        value_fetches = int(streamed_per_query.sum()) + resident
        query_fetches = s
        qk = int(keys_per_query.sum())
        energy = EnergyModel(vector_bytes=cfg.vector_bytes)
        energy.count_reram_vector_reads(
            key_fetches + value_fetches + query_fetches
        )
        energy.count_reram_vector_writes(3 * s)
        energy.count_buffer_vector_reads(2 * qk)
        energy.count_buffer_vector_writes(key_fetches + value_fetches)
        energy.count_qk_dot_products(qk)
        energy.count_softmax_elements(qk)
        energy.count_v_mac_rows(qk)
        # Cycles: every query scores its keys; fetches overlap compute.
        per_key = -(-cfg.head_dim // cfg.mac_taps)
        worst = -(-keys_per_query // cfg.num_corelets)
        softmax = worst + -(-worst // 2)
        compute = worst * per_key * 2 + softmax + PIPELINE_OVERHEAD_CYCLES
        memory = np.array(
            [cfg.vector_fetch_cycles(2 * int(f)) for f in streamed_per_query]
        )
        cycles = int(np.maximum(compute, memory).sum())
        counts = {
            "key_fetches": float(key_fetches),
            "value_fetches": float(value_fetches),
            "query_fetches": float(query_fetches),
            "reram_writes": float(3 * s),
            "qk_dot_products": float(qk),
            "softmax_elements": float(qk),
            "v_mac_rows": float(qk),
            "unpruned_total": float(qk),
            "queries": float(s),
        }
        mode = ExecutionMode.MASK_ONLY if mask_aware else ExecutionMode.BASELINE
        return HeadReport(
            mode=mode.value, cycles=int(cycles),
            energy=energy.breakdown, counts=counts,
        )

    # -- on-chip runtime pruning (no in-memory support) -----------------
    def _simulate_pruning_only(self, sample: WorkloadSample) -> HeadReport:
        cfg = self.config
        s = sample.seq_len
        keep = sample.keep_mask
        capacity = cfg.kv_capacity_vectors
        resident = min(capacity, s)
        streamed = s - resident
        # Every key still streams on chip for the full Q.K computation.
        key_fetches = s * streamed + resident
        query_fetches = s
        # Values fetch only when unpruned and outside the pinned region.
        v_fetch_per_query = keep[:, resident:].sum(axis=1)
        value_fetches = int(v_fetch_per_query.sum()) + resident
        unpruned = keep.sum(axis=1)
        total_unpruned = int(unpruned.sum())
        qk = s * s
        energy = EnergyModel(vector_bytes=cfg.vector_bytes)
        energy.count_reram_vector_reads(
            key_fetches + value_fetches + query_fetches
        )
        energy.count_reram_vector_writes(3 * s)
        energy.count_buffer_vector_reads(qk + total_unpruned)
        energy.count_buffer_vector_writes(key_fetches + value_fetches)
        energy.count_qk_dot_products(qk)
        energy.count_softmax_elements(total_unpruned)
        energy.count_v_mac_rows(total_unpruned)
        per_key = -(-cfg.head_dim // cfg.mac_taps)
        worst_qk = -(-s // cfg.num_corelets)
        worst_v = self._per_corelet_worst(keep)
        softmax_tokens = -(-unpruned // cfg.num_corelets)
        softmax = softmax_tokens + -(-softmax_tokens // 2)
        compute = (
            worst_qk * per_key + softmax + worst_v * per_key
            + PIPELINE_OVERHEAD_CYCLES
        )
        memory = np.array(
            [
                cfg.vector_fetch_cycles(int(streamed + v))
                for v in v_fetch_per_query
            ]
        )
        cycles = int(np.maximum(compute, memory).sum())
        counts = {
            "key_fetches": float(key_fetches),
            "value_fetches": float(value_fetches),
            "query_fetches": float(query_fetches),
            "reram_writes": float(3 * s),
            "qk_dot_products": float(qk),
            "softmax_elements": float(total_unpruned),
            "v_mac_rows": float(total_unpruned),
            "unpruned_total": float(total_unpruned),
            "queries": float(s),
        }
        return HeadReport(
            mode=ExecutionMode.PRUNING_ONLY.value,
            cycles=cycles, energy=energy.breakdown, counts=counts,
        )

    # -- SPRINT ----------------------------------------------------------
    def _simulate_sprint(self, sample: WorkloadSample) -> HeadReport:
        cfg = self.config
        valid = sample.valid_len
        keep = sample.keep_mask[:valid, :valid]
        capacity = cfg.kv_capacity_vectors
        if self.enable_sld:
            fetches, reuses = simulate_sld_traffic(keep, capacity)
        else:
            # Ablation: no locality reuse -- every unpruned vector is a
            # fresh fetch for every query.
            fetches = keep.sum(axis=1)
            reuses = np.zeros_like(fetches)
        unpruned = keep.sum(axis=1)
        total_unpruned = int(unpruned.sum())
        total_fetches = int(fetches.sum())
        key_fetches = total_fetches
        value_fetches = total_fetches  # pruning vectors identical for K/V
        query_fetches = valid
        # In-memory thresholding events: one analog pass per column tile
        # per row tile per query, comparators across the valid columns.
        rows, cols = cfg.transposable_array
        col_tiles = -(-valid // cols)
        row_tiles = -(-cfg.head_dim // rows)
        array_ops = valid * col_tiles * row_tiles
        comparator_ops = valid * valid
        energy = EnergyModel(vector_bytes=cfg.vector_bytes)
        energy.count_reram_vector_reads(
            key_fetches + value_fetches + query_fetches
        )
        energy.count_reram_vector_writes(3 * valid)
        energy.count_inmemory_array_ops(array_ops)
        energy.count_comparator_ops(comparator_ops)
        energy.count_buffer_vector_reads(2 * total_unpruned)
        energy.count_buffer_vector_writes(key_fetches + value_fetches)
        energy.count_qk_dot_products(total_unpruned)
        energy.count_softmax_elements(total_unpruned)
        energy.count_v_mac_rows(total_unpruned)
        worst = self._per_corelet_worst(keep)
        compute = self._pipeline_cycles(worst, unpruned)
        memory = np.array(
            [cfg.vector_fetch_cycles(2 * int(f)) for f in fetches]
        ) + self.timing.t_axth
        cycles = int(np.maximum(compute, memory).sum())
        counts = {
            "key_fetches": float(key_fetches),
            "value_fetches": float(value_fetches),
            "query_fetches": float(query_fetches),
            "reram_writes": float(3 * valid),
            "qk_dot_products": float(total_unpruned),
            "softmax_elements": float(total_unpruned),
            "v_mac_rows": float(total_unpruned),
            "unpruned_total": float(total_unpruned),
            "inmemory_array_ops": float(array_ops),
            "comparator_ops": float(comparator_ops),
            "sld_reuses": float(reuses.sum()),
            "queries": float(valid),
        }
        return HeadReport(
            mode=ExecutionMode.SPRINT.value,
            cycles=cycles, energy=energy.breakdown, counts=counts,
        )

    # ------------------------------------------------------------------
    # workload / model simulation
    # ------------------------------------------------------------------
    def simulate_workload(
        self,
        workload: Workload,
        mode: ExecutionMode,
        model_name: str = "custom",
    ) -> SimulationReport:
        heads = [self.simulate_sample(s, mode) for s in workload]
        return SimulationReport.from_heads(
            model=model_name,
            config=self.config.name,
            mode=mode.value,
            heads=heads,
        )

    def simulate_model(
        self,
        spec: ModelSpec,
        mode: ExecutionMode,
        num_samples: int = 3,
        seed: int = 0,
        locality: Optional[float] = None,
    ) -> SimulationReport:
        """Generate the model's calibrated workload and simulate it."""
        workload = generate_workload(
            seq_len=spec.seq_len,
            pruning_rate=spec.pruning_rate,
            padding_ratio=spec.padding_ratio,
            num_samples=num_samples,
            locality=spec.locality if locality is None else locality,
            causal=spec.causal,
            seed=seed,
        )
        return self.simulate_workload(workload, mode, model_name=spec.name)
