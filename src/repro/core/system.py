"""The SPRINT system simulator (event-count + cycle model, section VII).

Simulates one attention head's execution under four execution modes and
produces event counts, a Figure 13-style energy breakdown, and a latency
estimate:

- ``BASELINE``     -- iso-resource design, no pruning, no mask filtering;
- ``MASK_ONLY``    -- baseline plus two-dimensional sequence reduction;
- ``PRUNING_ONLY`` -- on-chip learned runtime pruning (LeOPArd-style):
  every key still streams on chip and every Q.K dot product happens, but
  Softmax and the V pipeline run only on the unpruned subset;
- ``SPRINT``       -- in-memory thresholding + SLD-driven delta fetches +
  on-chip recompute + two-dimensional sequence reduction.

The cycle model follows the paper's performance simulator: per-query
latency is the worst case across CORELETs of the pipelined
QK -> Softmax -> V work, overlapped with the memory system's delta
fetches (prefetched by the controller), with ``tAxTh`` charged for the
in-memory thresholding handshake.

The heavy lifting lives in :mod:`repro.core.batched`: workloads are
simulated as one stacked batch through per-mode strategy classes, so
sweeps, the multi-head roll-up, and the serving cost cache all share a
single vectorized workload-level code path.  :meth:`SprintSystem.simulate_sample`
is the same engine run on a batch of one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.batched import (
    BatchedKernel,
    BatchedWorkload,
    ExecutionMode,
    simulate_sld_traffic,
    strategy_for,
)
from repro.core.configs import PIPELINE_OVERHEAD_CYCLES, SprintConfig
from repro.core.results import HeadReport, SimulationReport
from repro.memory.timing import DEFAULT_TIMING
from repro.models.zoo import ModelSpec
from repro.workloads.generator import Workload, WorkloadSample, generate_workload

__all__ = [
    "ExecutionMode",
    "PIPELINE_OVERHEAD_CYCLES",
    "SprintSystem",
    "simulate_sld_traffic",
]


class SprintSystem:
    """Simulate a :class:`SprintConfig` over calibrated workloads.

    Parameters
    ----------
    config:
        Hardware configuration (Table I).
    timing:
        Memory timing table (tAxTh etc.).
    enable_sld:
        Ablation knob: ``False`` disables the Spatial Locality Detection
        reuse, so every unpruned key/value is re-fetched per query.
    enable_interleaving:
        Ablation knob: ``False`` maps keys to CORELETs in sequential
        blocks instead of token interleaving (Figure 8's comparison).
    sld_slow_exact:
        ``True`` routes SLD traffic through the retained query-by-query
        LRU reference loop instead of the vectorized residency sweep
        (identical counts; used by parity tests and benchmarks).
    """

    def __init__(
        self,
        config: SprintConfig,
        timing=DEFAULT_TIMING,
        enable_sld: bool = True,
        enable_interleaving: bool = True,
        sld_slow_exact: bool = False,
    ):
        self.config = config
        self.timing = timing
        self.enable_sld = enable_sld
        self.enable_interleaving = enable_interleaving
        self.kernel = BatchedKernel(
            config,
            timing=timing,
            enable_sld=enable_sld,
            enable_interleaving=enable_interleaving,
            sld_slow_exact=sld_slow_exact,
        )

    # ------------------------------------------------------------------
    # simulation entry points
    # ------------------------------------------------------------------
    def simulate_sample(
        self, sample: WorkloadSample, mode: ExecutionMode
    ) -> HeadReport:
        """Simulate one attention head on one input sample."""
        return self.simulate_heads([sample], mode)[0]

    def simulate_heads(
        self, samples: Sequence[WorkloadSample], mode: ExecutionMode
    ) -> List[HeadReport]:
        """Per-sample head reports for ``samples``, batched by seq_len.

        Samples sharing a sequence length are stacked and simulated as
        one :class:`~repro.core.batched.BatchedWorkload`; the returned
        list preserves input order.
        """
        strategy = strategy_for(mode)
        samples = list(samples)
        buckets: Dict[int, List[int]] = {}
        for i, sample in enumerate(samples):
            buckets.setdefault(sample.seq_len, []).append(i)
        reports: List[Optional[HeadReport]] = [None] * len(samples)
        for indices in buckets.values():
            batch = BatchedWorkload.from_samples([samples[i] for i in indices])
            for i, report in zip(indices, strategy.simulate_batch(self.kernel, batch)):
                reports[i] = report
        return reports

    def simulate_workload(
        self,
        workload: Workload,
        mode: ExecutionMode,
        model_name: str = "custom",
    ) -> SimulationReport:
        """Simulate a whole workload in one batched pass."""
        heads = self.simulate_heads(list(workload), mode)
        return SimulationReport.from_heads(
            model=model_name,
            config=self.config.name,
            mode=mode.value,
            heads=heads,
        )

    def simulate_modes(
        self,
        workload: Workload,
        modes: Sequence[ExecutionMode],
        model_name: str = "custom",
    ) -> Dict[str, SimulationReport]:
        """One workload under several execution modes, keyed by mode value.

        Convenience wrapper for the base-vs-SPRINT comparison pattern
        the experiment sweeps use: one call, one workload object, every
        mode simulated over the identical masks (each mode is one
        batched :meth:`simulate_workload` pass).
        """
        return {
            mode.value: self.simulate_workload(workload, mode, model_name)
            for mode in modes
        }

    def simulate_model(
        self,
        spec: ModelSpec,
        mode: ExecutionMode,
        num_samples: int = 3,
        seed: int = 0,
        locality: Optional[float] = None,
    ) -> SimulationReport:
        """Generate the model's calibrated workload and simulate it."""
        workload = generate_workload(
            seq_len=spec.seq_len,
            pruning_rate=spec.pruning_rate,
            padding_ratio=spec.padding_ratio,
            num_samples=num_samples,
            locality=spec.locality if locality is None else locality,
            causal=spec.causal,
            seed=seed,
        )
        return self.simulate_workload(workload, mode, model_name=spec.name)
