"""The SPRINT system: configurations, simulator, and reports."""

from repro.core.configs import (
    BASELINE_SUFFIX,
    L_SPRINT,
    M_SPRINT,
    S_SPRINT,
    SPRINT_CONFIGS,
    SprintConfig,
)
from repro.core.design_space import (
    DesignPoint,
    best_under_area,
    pareto_frontier,
    sweep,
)
from repro.core.batched import (
    BatchedKernel,
    BatchedWorkload,
    simulate_sld_traffic,
)
from repro.core.multihead import ModelReport, MultiHeadSimulator
from repro.core.results import HeadReport, SimulationReport
from repro.core.system import ExecutionMode, SprintSystem

__all__ = [
    "BatchedKernel",
    "BatchedWorkload",
    "simulate_sld_traffic",
    "DesignPoint",
    "sweep",
    "pareto_frontier",
    "best_under_area",
    "MultiHeadSimulator",
    "ModelReport",
    "SprintConfig",
    "S_SPRINT",
    "M_SPRINT",
    "L_SPRINT",
    "SPRINT_CONFIGS",
    "BASELINE_SUFFIX",
    "SprintSystem",
    "ExecutionMode",
    "SimulationReport",
    "HeadReport",
]
