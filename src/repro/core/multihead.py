"""Full-model roll-up: heads x layers on top of the per-head simulator.

The paper evaluates a single attention head (its Figure 1/10-13 units);
real deployments care about whole layers and whole models.  This module
schedules all heads of all layers onto the configured CORELETs and
aggregates cycles/energy, including the head-level parallelism choice:
heads beyond the CORELET count serialize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.configs import SprintConfig
from repro.core.results import SimulationReport
from repro.core.system import ExecutionMode, SprintSystem
from repro.models.zoo import ModelSpec


@dataclass
class ModelReport:
    """Whole-model aggregate over layers and heads."""

    model: str
    config: str
    mode: str
    per_head: SimulationReport
    num_heads: int
    num_layers: int
    #: Heads processed concurrently (CORELET-limited).
    head_parallelism: int
    #: Bytes per embedding vector, taken from the simulated
    #: :class:`~repro.core.configs.SprintConfig` so data-movement
    #: roll-ups use the config's real vector size.
    vector_bytes: int = 64

    @property
    def total_cycles(self) -> float:
        """Cycles for the full stack of attention layers.

        Heads beyond the parallel degree serialize; layers always
        serialize (layer n+1 consumes layer n's output).
        """
        waves = -(-self.num_heads // self.head_parallelism)
        return self.per_head.cycles * waves * self.num_layers

    @property
    def total_energy_pj(self) -> float:
        return (
            self.per_head.total_energy_pj * self.num_heads * self.num_layers
        )

    def total_data_movement_bytes(
        self, vector_bytes: Optional[int] = None
    ) -> float:
        """Whole-model main-memory traffic in bytes.

        ``vector_bytes`` defaults to the simulated config's own vector
        size (it used to default to a hardcoded 64, silently misscaling
        non-64B configs).
        """
        if vector_bytes is None:
            vector_bytes = self.vector_bytes
        return (
            self.per_head.data_movement_bytes(vector_bytes)
            * self.num_heads
            * self.num_layers
        )

    def speedup_vs(self, other: "ModelReport") -> float:
        if self.total_cycles <= 0:
            return float("inf")
        return other.total_cycles / self.total_cycles

    def energy_reduction_vs(self, other: "ModelReport") -> float:
        if self.total_energy_pj <= 0:
            return float("inf")
        return other.total_energy_pj / self.total_energy_pj


class MultiHeadSimulator:
    """Roll per-head simulations up to layer and model granularity.

    Each CORELET processes one head at a time (the paper's CORELET is a
    complete per-head pipeline), so up to ``num_corelets`` heads run in
    parallel.  Within a head, that head's keys use the full CORELET --
    the per-head simulation therefore runs with a single-CORELET view.

    The per-head workload is simulated through the batched
    :meth:`SprintSystem.simulate_workload` core, so model roll-ups and
    the serving cost cache share the vectorized workload-level path.
    """

    def __init__(self, config: SprintConfig, **system_kwargs):
        self.config = config
        # Per-head execution sees one CORELET's worth of resources; the
        # K/V capacity is shared across concurrently-resident heads.
        per_head_capacity_kb = max(
            2, config.onchip_cache_kb // config.num_corelets
        )
        self._per_head_config = SprintConfig(
            name=f"{config.name}/head",
            num_corelets=1,
            onchip_cache_kb=per_head_capacity_kb,
            num_qkpu=1, num_vpu=1, num_softmax=1,
            query_buffer_bytes=config.query_buffer_bytes,
            index_buffer_bytes=config.index_buffer_bytes,
        )
        self.system = SprintSystem(self._per_head_config, **system_kwargs)

    def simulate(
        self,
        spec: ModelSpec,
        mode: ExecutionMode,
        num_samples: int = 2,
        seed: int = 0,
    ) -> ModelReport:
        per_head = self.system.simulate_model(
            spec, mode, num_samples=num_samples, seed=seed
        )
        return ModelReport(
            model=spec.name,
            config=self.config.name,
            mode=mode.value,
            per_head=per_head,
            num_heads=spec.num_heads,
            num_layers=spec.num_layers,
            head_parallelism=self.config.num_corelets,
            vector_bytes=self.config.vector_bytes,
        )

    def compare(
        self, spec: ModelSpec, num_samples: int = 2, seed: int = 0
    ) -> Dict[str, ModelReport]:
        """Baseline vs SPRINT at model granularity."""
        return {
            mode.value: self.simulate(spec, mode, num_samples, seed)
            for mode in (ExecutionMode.BASELINE, ExecutionMode.SPRINT)
        }
