"""Score-processing policies for the four accuracy scenarios of Figure 9.

A policy turns one head's raw pre-softmax score matrix into attention
probabilities, reproducing how each hardware configuration perturbs the
computation:

- :class:`ExactPolicy` -- the software baseline (no pruning).
- :class:`RuntimePruningPolicy` -- ideal learned runtime pruning
  (LeOPArd): exact scores decide, exact scores survive.
- :class:`SprintPolicy` with ``recompute=True`` -- SPRINT: approximate
  in-memory scores decide which keys survive, but the surviving scores
  are recomputed exactly on chip.
- :class:`SprintPolicy` with ``recompute=False`` -- the ablation: the
  approximate scores feed the softmax directly.

The in-memory approximation has two faithful components: the 4-bit
**MSB truncation of both operands** (keys live in 4-bit MLC cells;
queries are DAC-limited to 4 bits) and additive **analog output noise**
(the "5-bit equivalent accuracy" of a 64-tap crossbar dot product).
When the raw ``q``/``k`` operands are available the policy computes the
truncated-operand product; otherwise it falls back to quantizing the
score matrix itself to ``score_bits`` (Eq. 3's ``Score^b_R``, the knob
Figure 5 sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attention.functional import NEG_INFINITY, softmax
from repro.attention.pruning import calibrate_threshold, prune_scores
from repro.attention.quantization import (
    quantize_scores,
    split_msb_lsb,
    symmetric_quantize,
)


class ScorePolicy:
    """Interface: map raw scores (+padding) to probabilities and keep mask."""

    def process(
        self,
        scores: np.ndarray,
        padding_mask: Optional[np.ndarray] = None,
        q: Optional[np.ndarray] = None,
        k: Optional[np.ndarray] = None,
        scale: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


def _mask_scores(
    scores: np.ndarray, padding_mask: Optional[np.ndarray]
) -> np.ndarray:
    if padding_mask is None:
        return np.asarray(scores, dtype=np.float64)
    return np.where(padding_mask, scores, NEG_INFINITY)


def msb_truncated_scores(
    q: np.ndarray, k: np.ndarray, msb_bits: int = 4, scale: float = 1.0
) -> np.ndarray:
    """Approximate ``q k^T`` with 4-bit-MSB operands (section III-B).

    Both operands are symmetrically quantized to 8 bits, truncated to
    their ``msb_bits`` MSBs (arithmetic shift, exactly what storing the
    MSB half in MLC cells does), multiplied in the shifted domain, and
    rescaled to score units.
    """
    if not 0 < msb_bits <= 8:
        raise ValueError("msb_bits must be in (0, 8]")
    qq = symmetric_quantize(np.asarray(q, dtype=np.float64), bits=8)
    kk = symmetric_quantize(np.asarray(k, dtype=np.float64), bits=8)
    if msb_bits == 8:  # no truncation: the full 8-bit product
        q_m = qq.codes.astype(np.int64)
        k_m = kk.codes.astype(np.int64)
        product = q_m @ k_m.T
    else:
        shift = 8 - msb_bits
        q_m, _ = split_msb_lsb(qq.codes, bits=8, msb_bits=msb_bits)
        k_m, _ = split_msb_lsb(kk.codes, bits=8, msb_bits=msb_bits)
        product = (q_m.astype(np.int64) << shift) @ (
            (k_m.astype(np.int64) << shift).T
        )
    return product * (qq.scale * kk.scale * scale)


@dataclass
class ExactPolicy(ScorePolicy):
    """Full, unpruned attention (the paper's software baseline)."""

    def process(self, scores, padding_mask=None, q=None, k=None, scale=None):
        masked = _mask_scores(scores, padding_mask)
        keep = (
            np.ones_like(masked, dtype=bool)
            if padding_mask is None
            else np.asarray(padding_mask, dtype=bool)
        )
        return softmax(masked, axis=-1), keep


@dataclass
class RuntimePruningPolicy(ScorePolicy):
    """Ideal learned runtime pruning: exact scores for decision and value."""

    pruning_rate: float

    def process(self, scores, padding_mask=None, q=None, k=None, scale=None):
        masked = _mask_scores(scores, padding_mask)
        threshold = calibrate_threshold(masked, self.pruning_rate)
        result = prune_scores(masked, threshold)
        return result.probabilities, result.keep_mask

    def threshold_for(self, scores, padding_mask=None) -> float:
        return calibrate_threshold(
            _mask_scores(scores, padding_mask), self.pruning_rate
        )


@dataclass
class SprintPolicy(ScorePolicy):
    """SPRINT's in-memory thresholding, with or without on-chip recompute.

    Parameters
    ----------
    pruning_rate:
        Target rate used to calibrate the learned threshold.
    msb_bits:
        Operand MSBs kept in the transposable ReRAM (4 in the design).
    score_bits:
        When set, additionally quantizes the in-memory score itself to
        ``b`` bits (Eq. 3 / Figure 5 sweep).  ``None`` leaves the analog
        product at its native precision.
    noise_sigma:
        Analog output noise as a fraction of the score std-dev (on top
        of the truncation error).
    recompute:
        ``True`` -> surviving scores recomputed exactly on chip (SPRINT);
        ``False`` -> approximate scores feed the softmax (the ablation).
    threshold_margin:
        Optional negative margin subtracted from the threshold (section
        III-A's noise-compensation knob; costs pruning rate).
    """

    pruning_rate: float
    msb_bits: int = 4
    score_bits: Optional[int] = None
    noise_sigma: float = 0.02
    recompute: bool = True
    threshold_margin: float = 0.0
    seed: int = 0

    # Backwards-friendly alias used by the Figure 5 sweep.
    @property
    def decision_bits(self) -> Optional[int]:
        return self.score_bits

    def _approximate(
        self,
        scores: np.ndarray,
        q: Optional[np.ndarray],
        k: Optional[np.ndarray],
        scale: Optional[float],
    ) -> np.ndarray:
        if q is not None and k is not None:
            approx = msb_truncated_scores(
                q, k, msb_bits=self.msb_bits, scale=scale or 1.0
            )
        else:
            approx = np.asarray(scores, dtype=np.float64)
        if self.score_bits is not None:
            approx = quantize_scores(approx, self.score_bits)
        if self.noise_sigma > 0:
            rng = np.random.default_rng(self.seed)
            approx = approx + rng.normal(
                0.0,
                self.noise_sigma * float(np.std(scores)),
                size=approx.shape,
            )
        return approx

    def process(self, scores, padding_mask=None, q=None, k=None, scale=None):
        scores = np.asarray(scores, dtype=np.float64)
        # The analog dot product operates on raw (finite) operands; the
        # memory controller filters padded keys before thresholding.
        approx = self._approximate(scores, q, k, scale)
        masked_exact = _mask_scores(scores, padding_mask)
        masked_approx = _mask_scores(approx, padding_mask)
        threshold = (
            calibrate_threshold(masked_exact, self.pruning_rate)
            - self.threshold_margin
        )
        value_scores = masked_exact if self.recompute else masked_approx
        result = prune_scores(
            value_scores, threshold, decision_scores=masked_approx
        )
        return result.probabilities, result.keep_mask
