"""Quantization utilities for SPRINT's mixed analog/digital datapath.

SPRINT stores key vectors as 8-bit integers split into a 4-bit MSB part
(programmed into transposable MLC ReRAM cells, used for the approximate
in-memory dot product) and a 4-bit LSB part (standard ReRAM, fetched only
for the unpruned vectors so the on-chip accelerator can recompute scores
in full 8-bit precision).  Eq. 3 of the paper quantizes the in-memory
score itself to ``b`` bits before the threshold comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """Integer codes plus the scale that maps them back to real values.

    ``codes`` are signed integers in ``[-2**(bits-1), 2**(bits-1) - 1]``;
    ``scale`` is the real value of one code step, so
    ``dequantize(q) == q.codes * q.scale``.
    """

    codes: np.ndarray
    scale: float
    bits: int

    @property
    def level_count(self) -> int:
        return 2 ** self.bits


def symmetric_quantize(x: np.ndarray, bits: int) -> QuantizedTensor:
    """Symmetric linear quantization of ``x`` to signed ``bits``-bit codes.

    The scale is chosen from the maximum absolute value so zero is exactly
    representable, matching the straightforward post-training quantization
    the paper applies (no fine-tuning of the quantized values, section VII).
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    if bits == 1:
        # Sign-only representation: the single bit distinguishes
        # positive from negative at full scale (severely coarse, the
        # leftmost point of the paper's Figure 5 sweep).
        scale = max_abs if max_abs > 0 else 1.0
        codes = np.where(x >= 0, 1, -1).astype(np.int32)
        codes[x == 0] = 0
        return QuantizedTensor(codes=codes, scale=scale, bits=bits)
    q_max = 2 ** (bits - 1) - 1
    scale = max_abs / q_max if max_abs > 0 else 1.0
    codes = np.clip(np.round(x / scale), -q_max - 1, q_max).astype(np.int32)
    return QuantizedTensor(codes=codes, scale=scale, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Map integer codes back to real values."""
    return q.codes.astype(np.float64) * q.scale


def split_msb_lsb(codes: np.ndarray, bits: int = 8, msb_bits: int = 4):
    """Split signed ``bits``-bit codes into MSB and LSB integer parts.

    Returns ``(msb, lsb)`` such that ``msb * 2**lsb_bits + lsb == codes``.
    ``msb`` is signed (arithmetic shift) and is what SPRINT programs into
    the transposable ReRAM; ``lsb`` is unsigned in ``[0, 2**lsb_bits)``.
    """
    if not 0 < msb_bits < bits:
        raise ValueError("msb_bits must be in (0, bits)")
    codes = np.asarray(codes)
    if np.any(codes > 2 ** (bits - 1) - 1) or np.any(codes < -(2 ** (bits - 1))):
        raise ValueError(f"codes out of signed {bits}-bit range")
    lsb_bits = bits - msb_bits
    msb = codes >> lsb_bits  # arithmetic shift: floor division by 2**lsb_bits
    lsb = codes & ((1 << lsb_bits) - 1)
    return msb, lsb


def combine_msb_lsb(
    msb: np.ndarray, lsb: np.ndarray, bits: int = 8, msb_bits: int = 4
) -> np.ndarray:
    """Inverse of :func:`split_msb_lsb`."""
    lsb_bits = bits - msb_bits
    return (np.asarray(msb) << lsb_bits) + np.asarray(lsb)


def quantize_scores(scores: np.ndarray, bits: int) -> np.ndarray:
    """Quantize attention scores to ``b`` bits, returning *real* values.

    This models ``Score^b_R`` in Eq. 3: the limited-precision in-memory
    score compared against the learned threshold.  The analog column
    current spans the observed score range, so quantization is *affine*
    over ``[min, max]`` with ``2**b`` uniformly spaced levels -- at
    ``b = 1`` the representable values collapse to the range endpoints,
    which over-prunes aggressively (the cliff on the left of Figure 5).
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size == 0:
        return scores.copy()
    lo = float(np.min(scores))
    hi = float(np.max(scores))
    if hi <= lo:
        return scores.copy()
    levels = 2 ** bits - 1
    step = (hi - lo) / levels
    return lo + np.round((scores - lo) / step) * step
