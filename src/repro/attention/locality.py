"""Spatial locality between the unpruned key sets of adjacent queries.

Paper Eq. 1 derives the *expected* overlap if the ``M`` unpruned keys of
each query were drawn uniformly at random from the ``S`` positions: a
hypergeometric expectation ``E[L] = M^2 / S``.  Figure 3 shows real
attention exhibits 2-3x this overlap, which the SLD engine exploits.
"""

from __future__ import annotations

from math import lgamma
from typing import Iterable

import numpy as np


def _log_comb(n: int, k: int) -> float:
    if k < 0 or k > n:
        return float("-inf")
    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


def overlap_probability(seq_len: int, unpruned: int, overlap: int) -> float:
    """``P(L = overlap)`` from Eq. 1 (hypergeometric pmf).

    Probability that two independent uniformly-random subsets of size
    ``unpruned`` out of ``seq_len`` positions share exactly ``overlap``
    elements.
    """
    if not 0 <= unpruned <= seq_len:
        raise ValueError("unpruned must be in [0, seq_len]")
    log_p = (
        _log_comb(unpruned, overlap)
        + _log_comb(seq_len - unpruned, unpruned - overlap)
        - _log_comb(seq_len, unpruned)
    )
    return float(np.exp(log_p)) if log_p != float("-inf") else 0.0


def expected_random_overlap(seq_len: int, unpruned: int) -> float:
    """``E[L]`` of Eq. 1 -- the expected overlap under random pruning.

    The closed form of the hypergeometric mean is ``M^2 / S``; we compute
    the explicit sum of Eq. 1 (validated against the closed form in the
    test suite).
    """
    if unpruned == 0:
        return 0.0
    return float(
        sum(
            l * overlap_probability(seq_len, unpruned, l)
            for l in range(1, unpruned + 1)
        )
    )


def measure_adjacent_overlap(keep_mask: np.ndarray) -> float:
    """Mean overlap fraction between adjacent queries' unpruned key sets.

    ``keep_mask`` is the boolean ``(s, s)`` keep matrix; the returned value
    is ``mean_i |K_i intersect K_{i+1}| / |K_{i+1}|``, i.e. the fraction of
    the *next* query's needs already satisfied -- exactly the reuse the SLD
    engine converts into skipped fetches.  Rows with no unpruned keys
    (fully padded queries) are excluded.
    """
    keep = np.asarray(keep_mask, dtype=bool)
    if keep.ndim != 2:
        raise ValueError("keep_mask must be a 2-D (s, s) matrix")
    if keep.shape[0] < 2:
        return 0.0
    current = keep[1:]
    previous = keep[:-1]
    needs = current.sum(axis=1)
    shared = (current & previous).sum(axis=1)
    valid = needs > 0
    if not np.any(valid):
        return 0.0
    return float(np.mean(shared[valid] / needs[valid]))


def measure_overlap_series(keep_mask: np.ndarray) -> np.ndarray:
    """Per-adjacent-pair overlap fractions (length ``s - 1``)."""
    keep = np.asarray(keep_mask, dtype=bool)
    current = keep[1:]
    previous = keep[:-1]
    needs = current.sum(axis=1).astype(np.float64)
    shared = (current & previous).sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.where(needs > 0, shared / np.maximum(needs, 1), 0.0)
    return frac


def overlap_ratio_vs_random(keep_mask: np.ndarray) -> float:
    """How many times the observed overlap exceeds the Eq. 1 expectation.

    Figure 3 reports 2-3x for real datasets.  The random expectation is
    evaluated at each query's own unpruned count and averaged.
    """
    keep = np.asarray(keep_mask, dtype=bool)
    seq_len = keep.shape[1]
    counts = keep.sum(axis=1)
    valid = counts > 0
    if not np.any(valid):
        return 0.0
    expected_frac = np.mean(counts[valid] / seq_len)  # E[L]/M = M/S
    observed = measure_adjacent_overlap(keep)
    if expected_frac <= 0:
        return 0.0
    return float(observed / expected_frac)


def mean_unpruned(keep_masks: Iterable[np.ndarray]) -> float:
    """Average unpruned-key count across a collection of keep masks."""
    totals = [float(np.mean(np.asarray(m).sum(axis=1))) for m in keep_masks]
    return float(np.mean(totals)) if totals else 0.0
