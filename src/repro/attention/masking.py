"""Padding masks and two-dimensional sequence reduction (paper II-C3, VI).

Transformer inputs shorter than the model's maximum sequence length are
padded; the padded rows *and* columns of the score matrix contribute
nothing.  SPRINT's memory controller filters read requests for masked
regions, reducing computation in both dimensions ("two-dimensional
sequence reduction").
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.attention.functional import NEG_INFINITY


def padding_mask(seq_len: int, valid_len: int) -> np.ndarray:
    """Boolean ``(s, s)`` mask: ``True`` where both tokens are real.

    ``valid_len`` tokens at the head of the sequence are real; the tail is
    padding (the grey stripes of the paper's Figure 2).
    """
    if not 0 <= valid_len <= seq_len:
        raise ValueError("valid_len must be in [0, seq_len]")
    valid = np.zeros(seq_len, dtype=bool)
    valid[:valid_len] = True
    return np.outer(valid, valid)


def apply_padding_mask(scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Nullify masked score entries with a large negative value."""
    scores = np.asarray(scores, dtype=np.float64)
    if mask.shape != scores.shape:
        raise ValueError("mask shape must match scores shape")
    return np.where(mask, scores, NEG_INFINITY)


def two_dimensional_reduction(seq_len: int, valid_len: int) -> Tuple[int, int, float]:
    """Work remaining after skipping padded rows and columns.

    Returns ``(useful_queries, useful_keys_per_query, saved_fraction)``
    where ``saved_fraction`` is the fraction of the ``s x s`` score
    computations eliminated.  With the SQUAD-like 46% padding of BERT-B
    the saving approaches ``1 - 0.54**2``.
    """
    if not 0 <= valid_len <= seq_len:
        raise ValueError("valid_len must be in [0, seq_len]")
    total = seq_len * seq_len
    useful = valid_len * valid_len
    saved = 1.0 - useful / total if total else 0.0
    return valid_len, valid_len, saved
