"""Attention math, learned runtime pruning, and quantization utilities.

This package is the *functional* substrate of the reproduction: it
implements exact multi-head self-attention (numpy), the learned-threshold
runtime-pruning mechanism SPRINT builds upon (LeOPArd-style), the
quantization used for in-memory thresholding (MSB/LSB bit split, b-bit
score quantization, Eq. 3 of the paper), padding-mask helpers
(two-dimensional sequence reduction, paper section II-C3), and the
spatial-locality mathematics of Eq. 1.
"""

from repro.attention.heads import (
    HeadStats,
    MultiHeadResult,
    MultiHeadRuntime,
)
from repro.attention.policies import (
    ExactPolicy,
    RuntimePruningPolicy,
    ScorePolicy,
    SprintPolicy,
    msb_truncated_scores,
)
from repro.attention.functional import (
    attention_probabilities,
    multi_head_attention,
    scaled_dot_product_attention,
    softmax,
)
from repro.attention.locality import (
    expected_random_overlap,
    measure_adjacent_overlap,
    overlap_ratio_vs_random,
)
from repro.attention.masking import (
    apply_padding_mask,
    padding_mask,
    two_dimensional_reduction,
)
from repro.attention.pruning import (
    PruningResult,
    calibrate_threshold,
    prune_scores,
    runtime_prune,
)
from repro.attention.quantization import (
    QuantizedTensor,
    combine_msb_lsb,
    dequantize,
    quantize_scores,
    split_msb_lsb,
    symmetric_quantize,
)

__all__ = [
    "MultiHeadRuntime",
    "MultiHeadResult",
    "HeadStats",
    "ScorePolicy",
    "ExactPolicy",
    "RuntimePruningPolicy",
    "SprintPolicy",
    "msb_truncated_scores",
    "softmax",
    "scaled_dot_product_attention",
    "attention_probabilities",
    "multi_head_attention",
    "padding_mask",
    "apply_padding_mask",
    "two_dimensional_reduction",
    "PruningResult",
    "calibrate_threshold",
    "prune_scores",
    "runtime_prune",
    "QuantizedTensor",
    "symmetric_quantize",
    "dequantize",
    "split_msb_lsb",
    "combine_msb_lsb",
    "quantize_scores",
    "expected_random_overlap",
    "measure_adjacent_overlap",
    "overlap_ratio_vs_random",
]
