"""Exact (full-precision) self-attention primitives in numpy.

These functions are the reference implementation against which every
approximate path (quantized in-memory scores, pruned softmax, fixed-point
on-chip arithmetic) is validated.  Shapes follow the paper's notation:
``s`` is the sequence length and ``d`` the per-head embedding size
(d = 64 for every model in the paper's evaluation, Table I).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Value used to nullify masked / pruned scores before softmax.  The paper
#: calls this "a sufficiently large negative value" (-c in Eq. 3).
NEG_INFINITY = -1.0e9


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Rows consisting entirely of :data:`NEG_INFINITY` (fully masked rows in
    the padded region) return a uniform distribution rather than NaN, which
    mirrors hardware behaviour where those rows are simply never consumed.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    total = np.sum(exp, axis=axis, keepdims=True)
    return exp / total


def attention_probabilities(
    queries: np.ndarray,
    keys: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute raw scores and softmax probabilities for ``Q x K^T``.

    Parameters
    ----------
    queries:
        ``(s, d)`` query matrix.
    keys:
        ``(s, d)`` key matrix.
    mask:
        Optional boolean ``(s, s)`` matrix; ``False`` entries are nullified
        with :data:`NEG_INFINITY` before the softmax (padding mask).
    scale:
        Score scaling factor; defaults to ``1/sqrt(d)``.

    Returns
    -------
    (scores, probabilities):
        Both ``(s, s)``; ``scores`` are the *masked* pre-softmax scores.
    """
    queries = np.asarray(queries, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    if queries.ndim != 2 or keys.ndim != 2:
        raise ValueError("queries and keys must be rank-2 (s, d) matrices")
    if queries.shape[1] != keys.shape[1]:
        raise ValueError(
            f"embedding mismatch: queries d={queries.shape[1]}, "
            f"keys d={keys.shape[1]}"
        )
    if scale is None:
        scale = 1.0 / np.sqrt(queries.shape[1])
    scores = (queries @ keys.T) * scale
    if mask is not None:
        scores = np.where(mask, scores, NEG_INFINITY)
    return scores, softmax(scores, axis=-1)


def scaled_dot_product_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Full-precision ``softmax(Q K^T / sqrt(d)) V`` for a single head."""
    _, probabilities = attention_probabilities(queries, keys, mask, scale)
    return probabilities @ np.asarray(values, dtype=np.float64)


def multi_head_attention(
    x: np.ndarray,
    w_q: np.ndarray,
    w_k: np.ndarray,
    w_v: np.ndarray,
    w_o: np.ndarray,
    num_heads: int,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Multi-headed self-attention over input embeddings ``x``.

    Parameters
    ----------
    x:
        ``(s, e)`` input embeddings.
    w_q, w_k, w_v:
        ``(e, num_heads * d)`` projection matrices.
    w_o:
        ``(num_heads * d, e)`` output projection.
    num_heads:
        Number of attention heads; projections are split evenly.
    mask:
        Optional ``(s, s)`` boolean padding mask shared across heads.
    """
    x = np.asarray(x, dtype=np.float64)
    s = x.shape[0]
    proj_q = x @ w_q
    proj_k = x @ w_k
    proj_v = x @ w_v
    total = proj_q.shape[1]
    if total % num_heads:
        raise ValueError(
            f"projection width {total} not divisible by {num_heads} heads"
        )
    d = total // num_heads
    head_outputs = np.empty((s, total), dtype=np.float64)
    for h in range(num_heads):
        sl = slice(h * d, (h + 1) * d)
        head_outputs[:, sl] = scaled_dot_product_attention(
            proj_q[:, sl], proj_k[:, sl], proj_v[:, sl], mask=mask
        )
    return head_outputs @ w_o
