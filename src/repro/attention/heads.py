"""Multi-head attention runtime with per-head pruning statistics.

The accuracy experiments drive attention through per-head
:class:`~repro.attention.policies.ScorePolicy` objects; this module
adds the bookkeeping layer a system evaluation needs on top: per-head
learned thresholds, per-head pruning rates, adjacent-query overlap, and
CORELET-imbalance inputs -- the quantities Figures 2, 3, and 8 are
built from, exposed as a reusable API instead of experiment-local code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attention.functional import softmax
from repro.attention.locality import measure_adjacent_overlap
from repro.attention.policies import ScorePolicy, SprintPolicy


@dataclass
class HeadStats:
    """Measured statistics for one head on one input."""

    head: int
    pruning_rate: float
    adjacent_overlap: float
    unpruned_mean: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "head": float(self.head),
            "pruning_rate": self.pruning_rate,
            "adjacent_overlap": self.adjacent_overlap,
            "unpruned_mean": self.unpruned_mean,
        }


@dataclass
class MultiHeadResult:
    """Outputs plus per-head statistics from one runtime invocation."""

    outputs: np.ndarray  # (s, num_heads * d)
    head_stats: List[HeadStats] = field(default_factory=list)

    def mean_pruning_rate(self) -> float:
        if not self.head_stats:
            return 0.0
        return float(np.mean([h.pruning_rate for h in self.head_stats]))

    def mean_overlap(self) -> float:
        if not self.head_stats:
            return 0.0
        return float(np.mean([h.adjacent_overlap for h in self.head_stats]))


class MultiHeadRuntime:
    """Run multi-head attention under a policy, collecting head stats.

    Parameters
    ----------
    num_heads:
        Heads to split the projection width into.
    policy:
        Score policy applied identically to every head (the paper learns
        one threshold per *layer*; per-head thresholds emerge from the
        policy's calibration against each head's own scores).
    """

    def __init__(self, num_heads: int, policy: Optional[ScorePolicy] = None):
        if num_heads < 1:
            raise ValueError("num_heads must be positive")
        self.num_heads = num_heads
        self.policy = policy or SprintPolicy(pruning_rate=0.75)

    def run(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        padding_mask: Optional[np.ndarray] = None,
    ) -> MultiHeadResult:
        """Attention over pre-projected ``(s, num_heads * d)`` tensors."""
        queries = np.asarray(queries, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if queries.shape != keys.shape or keys.shape != values.shape:
            raise ValueError("q/k/v shapes must match")
        s, total = queries.shape
        if total % self.num_heads:
            raise ValueError(
                f"width {total} not divisible by {self.num_heads} heads"
            )
        d = total // self.num_heads
        scale = 1.0 / np.sqrt(d)
        outputs = np.empty_like(queries)
        stats: List[HeadStats] = []
        for head in range(self.num_heads):
            sl = slice(head * d, (head + 1) * d)
            q, k, v = queries[:, sl], keys[:, sl], values[:, sl]
            scores = (q @ k.T) * scale
            probabilities, keep = self.policy.process(
                scores, padding_mask, q=q, k=k, scale=scale
            )
            outputs[:, sl] = probabilities @ v
            region = keep if padding_mask is None else keep[
                padding_mask.any(axis=1)
            ][:, padding_mask.any(axis=0)]
            stats.append(
                HeadStats(
                    head=head,
                    pruning_rate=1.0 - float(region.mean())
                    if region.size else 0.0,
                    adjacent_overlap=measure_adjacent_overlap(keep),
                    unpruned_mean=float(keep.sum(axis=1).mean()),
                )
            )
        return MultiHeadResult(outputs=outputs, head_stats=stats)

    def compare_policies(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        policies: Sequence[ScorePolicy],
        padding_mask: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Max output deviation of each policy vs exact attention.

        A convenience used by robustness studies: how far each policy's
        multi-head output drifts from the exact computation.
        """
        exact = self._exact(queries, keys, values, padding_mask)
        deviations = []
        for policy in policies:
            runtime = MultiHeadRuntime(self.num_heads, policy)
            result = runtime.run(queries, keys, values, padding_mask)
            deviations.append(
                float(np.max(np.abs(result.outputs - exact)))
            )
        return deviations

    def _exact(self, queries, keys, values, padding_mask) -> np.ndarray:
        s, total = queries.shape
        d = total // self.num_heads
        scale = 1.0 / np.sqrt(d)
        out = np.empty_like(np.asarray(queries, dtype=np.float64))
        for head in range(self.num_heads):
            sl = slice(head * d, (head + 1) * d)
            scores = (queries[:, sl] @ keys[:, sl].T) * scale
            if padding_mask is not None:
                scores = np.where(padding_mask, scores, -1e9)
            out[:, sl] = softmax(scores, axis=-1) @ values[:, sl]
        return out
