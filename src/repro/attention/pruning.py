"""Learned-threshold runtime pruning (the mechanism SPRINT accelerates).

The paper builds on LeOPArd-style *learned runtime pruning*: a per-layer
threshold, learned during fine-tuning, is compared against every
pre-softmax score.  Scores below the threshold are replaced by a large
negative constant so the softmax drives their probability to zero
(Eq. 3).  SPRINT moves the *comparison* into ReRAM using approximate
scores; this module provides both the exact comparison and the
approximate variant used for in-memory thresholding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attention.functional import NEG_INFINITY, softmax
from repro.attention.quantization import quantize_scores


@dataclass(frozen=True)
class PruningResult:
    """Outcome of a runtime-pruning pass over a score matrix.

    Attributes
    ----------
    keep_mask:
        Boolean ``(s, s)``; ``True`` where the key survives for that query.
    scores:
        The ``(s, s)`` score matrix with pruned entries nullified.
    probabilities:
        Softmax over :attr:`scores`.
    threshold:
        The threshold the comparison used.
    """

    keep_mask: np.ndarray
    scores: np.ndarray
    probabilities: np.ndarray
    threshold: float

    @property
    def pruning_rate(self) -> float:
        """Fraction of (query, key) score entries removed."""
        return 1.0 - float(np.mean(self.keep_mask))

    def unpruned_counts(self) -> np.ndarray:
        """Number of surviving keys per query (length ``s``)."""
        return self.keep_mask.sum(axis=1)

    def pruning_vectors(self) -> np.ndarray:
        """Binary pruning vectors as the hardware emits them.

        Follows the paper's memory-controller convention ('1' -> pruned,
        '0' -> unpruned, section V-C).
        """
        return (~self.keep_mask).astype(np.uint8)


def calibrate_threshold(scores: np.ndarray, target_pruning_rate: float) -> float:
    """Pick the threshold that yields ``target_pruning_rate`` on ``scores``.

    The paper *learns* thresholds during task fine-tuning and reports the
    resulting pruning rate per model (section VII).  Without the original
    fine-tuning pipeline we invert the relationship: given a calibration
    score sample, choose the quantile that reproduces the published rate.
    """
    if not 0.0 <= target_pruning_rate < 1.0:
        raise ValueError("target_pruning_rate must be in [0, 1)")
    scores = np.asarray(scores, dtype=np.float64)
    finite = scores[scores > NEG_INFINITY / 2]
    if finite.size == 0:
        raise ValueError("no finite scores to calibrate against")
    return float(np.quantile(finite, target_pruning_rate))


def prune_scores(
    scores: np.ndarray,
    threshold: float,
    *,
    decision_scores: Optional[np.ndarray] = None,
    keep_self: bool = True,
) -> PruningResult:
    """Apply Eq. 3: threshold-compare, nullify, softmax.

    Parameters
    ----------
    scores:
        Full-precision ``(s, s)`` pre-softmax scores.  These are the values
        the surviving entries keep (the *recompute* path).
    threshold:
        Learned threshold ``Th``.
    decision_scores:
        Scores used for the *comparison* only.  Pass the b-bit / noisy
        in-memory scores to model SPRINT's approximate thresholding; by
        default the exact scores decide (ideal runtime pruning).
    keep_self:
        Always keep the diagonal (a query's own key), which self-attention
        pruning schemes preserve to keep every row's softmax well defined.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if decision_scores is None:
        decision_scores = scores
    decision_scores = np.asarray(decision_scores, dtype=np.float64)
    if decision_scores.shape != scores.shape:
        raise ValueError("decision_scores shape must match scores")
    keep = decision_scores >= threshold
    if keep_self:
        np.fill_diagonal(keep, True)
    # Never prune everything in a row: keep the row maximum so softmax has
    # at least one finite entry (hardware equivalently falls back to the
    # strongest key when the analog comparator rejects all columns).
    empty_rows = ~keep.any(axis=1)
    if np.any(empty_rows):
        best = np.argmax(decision_scores[empty_rows], axis=1)
        keep[np.nonzero(empty_rows)[0], best] = True
    pruned = np.where(keep, scores, NEG_INFINITY)
    return PruningResult(
        keep_mask=keep,
        scores=pruned,
        probabilities=softmax(pruned, axis=-1),
        threshold=float(threshold),
    )


def runtime_prune(
    scores: np.ndarray,
    target_pruning_rate: float,
    *,
    decision_bits: Optional[int] = None,
    noise_sigma: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    keep_self: bool = True,
) -> PruningResult:
    """Calibrate a threshold and prune, optionally with approximate scores.

    ``decision_bits`` quantizes the comparison scores to ``b`` bits (Fig. 5
    sensitivity study); ``noise_sigma`` adds Gaussian analog noise relative
    to the score standard deviation (circuit inaccuracies, section III-A).
    """
    scores = np.asarray(scores, dtype=np.float64)
    threshold = calibrate_threshold(scores, target_pruning_rate)
    decision = scores
    if decision_bits is not None:
        decision = quantize_scores(decision, decision_bits)
    if noise_sigma > 0.0:
        rng = rng or np.random.default_rng()
        decision = decision + rng.normal(
            0.0, noise_sigma * float(np.std(scores)), size=scores.shape
        )
    return prune_scores(
        scores, threshold, decision_scores=decision, keep_self=keep_self
    )
